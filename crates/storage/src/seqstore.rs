//! The sequence database: variable-length sequences on fixed-size pages.
//!
//! Records are appended back-to-back in a byte-addressed data region that
//! spans pages (page 0 is a header page). The store keeps an in-memory
//! directory `SeqId -> (offset, length)`, rebuilt from the self-describing
//! records on open.
//!
//! Every logical operation accounts its I/O in an [`IoProfile`] under the
//! cold-cache assumption the paper's experiments imply: a random `get` costs
//! the pages the record spans, a full `scan` costs every data page
//! sequentially. The buffer pool's actual hit statistics are available
//! separately for cache-behaviour ablations.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, BufferStats};
use crate::codec::{decode_record, encode_record, CodecError};
use crate::cost::IoProfile;
use crate::pager::{MemPager, Pager, PagerError};

/// Identifier of a sequence within a store (dense, starting at 0).
pub type SeqId = u64;

/// Magic marking a sequence store header page ("TWS1").
const MAGIC: u32 = 0x5457_5331;
const HEADER_PAGE: u64 = 0;

/// Errors raised by the sequence store.
#[derive(Debug)]
pub enum StoreError {
    Pager(PagerError),
    Codec(CodecError),
    /// Header page malformed or missing magic.
    BadHeader(&'static str),
    /// Requested id not present.
    UnknownSequence(SeqId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Pager(e) => write!(f, "storage error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::BadHeader(w) => write!(f, "bad store header: {w}"),
            StoreError::UnknownSequence(id) => write!(f, "unknown sequence id {id}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<PagerError> for StoreError {
    fn from(e: PagerError) -> Self {
        StoreError::Pager(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct DirEntry {
    /// Byte offset of the record within the data region.
    offset: u64,
    /// Number of elements.
    len: u32,
}

/// A paged store of numeric sequences.
pub struct SequenceStore<P: Pager> {
    pool: BufferPool<P>,
    directory: Vec<DirEntry>,
    /// Next free byte in the data region.
    write_cursor: u64,
    page_size: usize,
    io: Mutex<IoProfile>,
}

impl SequenceStore<MemPager> {
    /// An in-memory store with the paper's 1 KB pages.
    pub fn in_memory() -> Self {
        Self::create(MemPager::new(crate::pager::DEFAULT_PAGE_SIZE), 64)
            .expect("in-memory store creation cannot fail")
    }
}

impl<P: Pager> SequenceStore<P> {
    /// Creates an empty store on a fresh pager.
    pub fn create(mut pager: P, pool_pages: usize) -> Result<Self, StoreError> {
        assert_eq!(pager.page_count(), 0, "create() requires an empty pager");
        pager.allocate()?; // header page
        let page_size = pager.page_size();
        let store = Self {
            pool: BufferPool::new(pager, pool_pages),
            directory: Vec::new(),
            write_cursor: 0,
            page_size,
            io: Mutex::new(IoProfile::default()),
        };
        store.write_header()?;
        Ok(store)
    }

    /// Opens an existing store, rebuilding the directory by decoding the data
    /// region sequentially.
    pub fn open(pager: P, pool_pages: usize) -> Result<Self, StoreError> {
        let page_size = pager.page_size();
        let pool = BufferPool::new(pager, pool_pages);
        let mut head = vec![0u8; page_size];
        pool.read(HEADER_PAGE, &mut head)?;
        let mut buf = Bytes::copy_from_slice(&head);
        if buf.get_u32_le() != MAGIC {
            return Err(StoreError::BadHeader("magic"));
        }
        let _version = buf.get_u32_le();
        let count = buf.get_u64_le();
        let data_bytes = buf.get_u64_le();

        let mut store = Self {
            pool,
            directory: Vec::with_capacity(count as usize),
            write_cursor: data_bytes,
            page_size,
            io: Mutex::new(IoProfile::default()),
        };
        // Rebuild the directory from the records themselves.
        let mut raw = store.read_span(0, data_bytes as usize)?;
        let mut offset = 0u64;
        for expected_id in 0..count {
            let before = raw.remaining();
            let rec = decode_record(&mut raw)?;
            if rec.id != expected_id {
                return Err(StoreError::BadHeader("record id out of order"));
            }
            store.directory.push(DirEntry {
                offset,
                len: rec.values.len() as u32,
            });
            offset += (before - raw.remaining()) as u64;
        }
        *store.io.lock() = IoProfile::default();
        Ok(store)
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the store holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Page size of the underlying pager.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages the data region occupies.
    pub fn data_pages(&self) -> u64 {
        self.write_cursor.div_ceil(self.page_size as u64)
    }

    /// Total bytes of record data.
    pub fn data_bytes(&self) -> u64 {
        self.write_cursor
    }

    /// Length (element count) of a stored sequence without reading its data.
    pub fn sequence_len(&self, id: SeqId) -> Result<usize, StoreError> {
        self.dir(id).map(|e| e.len as usize)
    }

    /// Number of pages a random read of `id` touches.
    pub fn sequence_pages(&self, id: SeqId) -> Result<u64, StoreError> {
        let e = self.dir(id)?;
        let bytes = crate::codec::encoded_len(e.len as usize) as u64;
        Ok(span_pages(e.offset, bytes, self.page_size as u64))
    }

    fn dir(&self, id: SeqId) -> Result<DirEntry, StoreError> {
        self.directory
            .get(id as usize)
            .copied()
            .ok_or(StoreError::UnknownSequence(id))
    }

    /// Appends a sequence, returning its id.
    pub fn append(&mut self, values: &[f64]) -> Result<SeqId, StoreError> {
        let id = self.directory.len() as SeqId;
        let mut buf = BytesMut::new();
        encode_record(&mut buf, id, values);
        let offset = self.write_cursor;
        self.write_span(offset, &buf)?;
        self.directory.push(DirEntry {
            offset,
            len: values.len() as u32,
        });
        self.write_cursor += buf.len() as u64;
        Ok(id)
    }

    /// Random-access read of one sequence. Accounts `pages-spanned` random
    /// page reads in the I/O profile.
    pub fn get(&self, id: SeqId) -> Result<Vec<f64>, StoreError> {
        let e = self.dir(id)?;
        let bytes = crate::codec::encoded_len(e.len as usize);
        let mut raw = self.read_span(e.offset, bytes)?;
        let rec = decode_record(&mut raw)?;
        debug_assert_eq!(rec.id, id);
        let mut io = self.io.lock();
        io.random_requests += 1;
        io.random_page_reads += span_pages(e.offset, bytes as u64, self.page_size as u64);
        drop(io);
        Ok(rec.values)
    }

    /// Sequential scan over every `(id, values)` pair, materialized.
    /// Prefer [`SequenceStore::scan_visit`] for large databases — it streams
    /// page by page instead of buffering the whole data region.
    pub fn scan(&self) -> Result<Vec<(SeqId, Vec<f64>)>, StoreError> {
        let mut out = Vec::with_capacity(self.directory.len());
        self.scan_visit(|id, values| out.push((id, values)))?;
        Ok(out)
    }

    /// Streaming sequential scan: decodes one record at a time, holding at
    /// most one record plus one page in memory. Accounts one sequential pass
    /// over the whole data region, like [`SequenceStore::scan`].
    pub fn scan_visit<F>(&self, mut visit: F) -> Result<(), StoreError>
    where
        F: FnMut(SeqId, Vec<f64>),
    {
        let mut buf = BytesMut::new();
        let mut page_buf = vec![0u8; self.page_size];
        let mut next_page = 1u64; // page 0 is the header
        let last_page = self.data_page(self.write_cursor.saturating_sub(1));
        for (idx, entry) in self.directory.iter().enumerate() {
            let need = crate::codec::encoded_len(entry.len as usize);
            while buf.len() < need {
                debug_assert!(
                    next_page <= last_page,
                    "scan ran past the data region at record {idx}"
                );
                self.pool.read(next_page, &mut page_buf)?;
                buf.extend_from_slice(&page_buf);
                next_page += 1;
            }
            let mut record = buf.split_to(need).freeze();
            let rec = decode_record(&mut record)?;
            debug_assert_eq!(rec.id, idx as u64);
            visit(rec.id, rec.values);
        }
        self.io.lock().sequential_pages_scanned += self.data_pages();
        Ok(())
    }

    /// Takes and resets the accumulated I/O profile.
    pub fn take_io(&self) -> IoProfile {
        std::mem::take(&mut self.io.lock())
    }

    /// Reads the accumulated I/O profile without resetting it.
    pub fn io(&self) -> IoProfile {
        *self.io.lock()
    }

    /// Buffer pool counters (actual caching behaviour, not the model).
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Persists the header and flushes dirty pages.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.write_header()?;
        self.pool.flush()?;
        Ok(())
    }

    fn write_header(&self) -> Result<(), StoreError> {
        let mut page = BytesMut::with_capacity(self.page_size);
        page.put_u32_le(MAGIC);
        page.put_u32_le(1); // version
        page.put_u64_le(self.directory.len() as u64);
        page.put_u64_le(self.write_cursor);
        page.resize(self.page_size, 0);
        self.pool.write(HEADER_PAGE, &page)?;
        Ok(())
    }

    /// Data-region page number holding byte `offset`.
    fn data_page(&self, offset: u64) -> u64 {
        1 + offset / self.page_size as u64
    }

    fn read_span(&self, offset: u64, len: usize) -> Result<Bytes, StoreError> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        let ps = self.page_size as u64;
        let first = self.data_page(offset);
        let last = self.data_page(offset + len as u64 - 1);
        let mut raw = BytesMut::with_capacity(((last - first + 1) * ps) as usize);
        let mut page_buf = vec![0u8; self.page_size];
        for p in first..=last {
            self.pool.read(p, &mut page_buf)?;
            raw.extend_from_slice(&page_buf);
        }
        let start = (offset % ps) as usize;
        Ok(raw.freeze().slice(start..start + len))
    }

    fn write_span(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let ps = self.page_size as u64;
        // Ensure enough pages exist.
        let end = offset + data.len() as u64;
        let needed_last = self.data_page(end.saturating_sub(1).max(offset));
        while self.pool.page_count() <= needed_last {
            self.pool.allocate()?;
        }
        let mut page_buf = vec![0u8; self.page_size];
        let mut written = 0usize;
        let mut cursor = offset;
        while written < data.len() {
            let page = self.data_page(cursor);
            let in_page = (cursor % ps) as usize;
            let chunk = (self.page_size - in_page).min(data.len() - written);
            // Read-modify-write when the chunk does not cover the whole page.
            if chunk < self.page_size {
                self.pool.read(page, &mut page_buf)?;
            }
            page_buf[in_page..in_page + chunk].copy_from_slice(&data[written..written + chunk]);
            self.pool.write(page, &page_buf)?;
            written += chunk;
            cursor += chunk as u64;
        }
        Ok(())
    }
}

/// Number of pages a byte span `[offset, offset+len)` touches.
fn span_pages(offset: u64, len: u64, page_size: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = offset / page_size;
    let last = (offset + len - 1) / page_size;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::FilePager;

    fn sample(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..(i % 40 + 1))
                    .map(|j| (i * 100 + j) as f64 * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn append_and_get_roundtrip() {
        let mut store = SequenceStore::in_memory();
        let data = sample(50);
        for (i, s) in data.iter().enumerate() {
            let id = store.append(s).unwrap();
            assert_eq!(id, i as u64);
        }
        assert_eq!(store.len(), 50);
        for (i, s) in data.iter().enumerate() {
            assert_eq!(&store.get(i as u64).unwrap(), s);
        }
    }

    #[test]
    fn get_unknown_id_errors() {
        let store = SequenceStore::in_memory();
        assert!(matches!(store.get(0), Err(StoreError::UnknownSequence(0))));
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let mut store = SequenceStore::in_memory();
        let data = sample(30);
        for s in &data {
            store.append(s).unwrap();
        }
        let scanned = store.scan().unwrap();
        assert_eq!(scanned.len(), 30);
        for (i, (id, values)) in scanned.iter().enumerate() {
            assert_eq!(*id, i as u64);
            assert_eq!(values, &data[i]);
        }
    }

    #[test]
    fn scan_visit_streams_same_contents_as_scan() {
        let mut store = SequenceStore::in_memory();
        let data = sample(40);
        for s in &data {
            store.append(s).unwrap();
        }
        let materialized = store.scan().unwrap();
        let mut streamed = Vec::new();
        store
            .scan_visit(|id, values| streamed.push((id, values)))
            .unwrap();
        assert_eq!(materialized, streamed);
        // Both account one sequential pass.
        let io = store.take_io();
        assert_eq!(io.sequential_pages_scanned, 2 * store.data_pages());
    }

    #[test]
    fn scan_visit_handles_records_spanning_pages() {
        let mut store = SequenceStore::in_memory();
        // Records far larger than a page (128 f64 per 1 KB page).
        for i in 0..5 {
            store.append(&vec![i as f64; 400]).unwrap();
        }
        let mut seen = 0usize;
        store
            .scan_visit(|id, values| {
                assert_eq!(values, vec![id as f64; 400]);
                seen += 1;
            })
            .unwrap();
        assert_eq!(seen, 5);
    }

    #[test]
    fn io_accounting_random_vs_sequential() {
        let mut store = SequenceStore::in_memory();
        // Long sequences spanning multiple 1 KB pages (128 f64 per page).
        for _ in 0..10 {
            store.append(&vec![1.0; 500]).unwrap();
        }
        store.take_io();
        store.get(3).unwrap();
        let io = store.take_io();
        assert!(io.random_page_reads >= 4, "spans >= 4 pages: {io:?}");
        assert_eq!(io.sequential_pages_scanned, 0);

        store.scan().unwrap();
        let io = store.take_io();
        assert_eq!(io.random_page_reads, 0);
        assert_eq!(io.sequential_pages_scanned, store.data_pages());
    }

    #[test]
    fn sequence_pages_matches_accounting() {
        let mut store = SequenceStore::in_memory();
        store.append(&vec![0.5; 300]).unwrap();
        store.take_io();
        store.get(0).unwrap();
        assert_eq!(
            store.take_io().random_page_reads,
            store.sequence_pages(0).unwrap()
        );
    }

    #[test]
    fn empty_sequence_roundtrip() {
        let mut store = SequenceStore::in_memory();
        let id = store.append(&[]).unwrap();
        assert_eq!(store.get(id).unwrap(), Vec::<f64>::new());
        assert_eq!(store.sequence_len(id).unwrap(), 0);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("twstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pages");
        let data = sample(25);
        {
            let pager = FilePager::create(&path, 1024).unwrap();
            let mut store = SequenceStore::create(pager, 16).unwrap();
            for s in &data {
                store.append(s).unwrap();
            }
            store.flush().unwrap();
        }
        {
            let pager = FilePager::open(&path, 1024).unwrap();
            let store = SequenceStore::open(pager, 16).unwrap();
            assert_eq!(store.len(), 25);
            for (i, s) in data.iter().enumerate() {
                assert_eq!(&store.get(i as u64).unwrap(), s);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let mut pager = MemPager::new(1024);
        pager.allocate().unwrap();
        let err = match SequenceStore::open(pager, 4) {
            Err(e) => e,
            Ok(_) => panic!("garbage header must not open"),
        };
        assert!(matches!(err, StoreError::BadHeader("magic")));
    }

    #[test]
    fn long_sequences_span_pages_correctly() {
        let mut store = SequenceStore::in_memory();
        let long: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let id = store.append(&long).unwrap();
        assert_eq!(store.get(id).unwrap(), long);
        assert!(store.data_pages() > 70);
    }

    #[test]
    fn span_pages_math() {
        assert_eq!(span_pages(0, 0, 1024), 0);
        assert_eq!(span_pages(0, 1, 1024), 1);
        assert_eq!(span_pages(0, 1024, 1024), 1);
        assert_eq!(span_pages(0, 1025, 1024), 2);
        assert_eq!(span_pages(1023, 2, 1024), 2);
        assert_eq!(span_pages(1024, 1024, 1024), 1);
    }
}
