//! The sequence database: variable-length sequences on fixed-size pages.
//!
//! Records are appended back-to-back in a byte-addressed data region that
//! spans pages (page 0 is a header page). The store keeps an in-memory
//! directory `SeqId -> (offset, length)`, rebuilt from the self-describing
//! records on open.
//!
//! Every logical operation accounts its I/O in an [`IoProfile`] under the
//! cold-cache assumption the paper's experiments imply: a random `get` costs
//! the pages the record spans, a full `scan` costs every data page
//! sequentially. The buffer pool's actual hit statistics are available
//! separately for cache-behaviour ablations.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::buffer::{BufferPool, BufferStats};
use crate::checksum::Crc32;
use crate::codec::{decode_record_fmt, encode_record_fmt, CodecError, RecordFormat};
use crate::convert::{in_page_usize, record_len_u32, u32_to_usize, usize_to_u64};
use crate::cost::IoProfile;
use crate::pager::{MemPager, Pager, PagerError};

/// Identifier of a sequence within a store (dense, starting at 0).
pub type SeqId = u64;

/// Magic marking a sequence store header page ("TWS1").
const MAGIC: u32 = 0x5457_5331;
const HEADER_PAGE: u64 = 0;
/// Bytes of the v2 header covered by its trailing CRC.
const HEADER_V2_CRC_SPAN: usize = 32;

/// Errors raised by the sequence store.
#[derive(Debug)]
pub enum StoreError {
    Pager(PagerError),
    Codec(CodecError),
    /// Header page malformed or missing magic.
    BadHeader(&'static str),
    /// Requested id not present.
    UnknownSequence(SeqId),
    /// Header declares a format generation this build does not know.
    UnsupportedVersion(u32),
    /// Header declares a page format other than the one the supplied pager
    /// stack implements (e.g. a checksummed file opened with a plain pager).
    PageFormatMismatch {
        header: u32,
        pager: u32,
    },
    /// Persisted state is internally inconsistent (beyond a single record).
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Pager(e) => write!(f, "storage error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::BadHeader(w) => write!(f, "bad store header: {w}"),
            StoreError::UnknownSequence(id) => write!(f, "unknown sequence id {id}"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "store format version {v} not supported by this build")
            }
            StoreError::PageFormatMismatch { header, pager } => write!(
                f,
                "store was written with page format {header} but opened with a \
                 format-{pager} pager stack"
            ),
            StoreError::Corrupt(w) => write!(f, "store is corrupt: {w}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Pager(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl StoreError {
    /// Whether the error means persisted bytes are damaged (rather than a
    /// usage error or an I/O fault).
    pub fn is_corruption(&self) -> bool {
        match self {
            StoreError::Corrupt(_) | StoreError::BadHeader(_) => true,
            StoreError::Pager(e) => e.is_corruption(),
            StoreError::Codec(e) => e.is_corruption(),
            _ => false,
        }
    }

    /// Whether a retry of the failing operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Pager(e) if e.is_transient())
    }
}

impl From<PagerError> for StoreError {
    fn from(e: PagerError) -> Self {
        StoreError::Pager(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

#[derive(Debug, Clone, Copy)]
struct DirEntry {
    /// Byte offset of the record within the data region.
    offset: u64,
    /// Number of elements.
    len: u32,
}

/// What a recovery pass found while reopening a store (see
/// [`SequenceStore::open_recovering`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records the header promised.
    pub expected_records: u64,
    /// Records that decoded cleanly (always a prefix).
    pub recovered_records: u64,
    /// Data bytes the header promised.
    pub expected_bytes: u64,
    /// Data bytes retained after truncating the damaged tail.
    pub recovered_bytes: u64,
}

impl RecoveryReport {
    /// Whether the store opened without losing anything.
    pub fn is_clean(&self) -> bool {
        self.recovered_records == self.expected_records
            && self.recovered_bytes == self.expected_bytes
    }

    /// Records lost to the damaged tail.
    pub fn lost_records(&self) -> u64 {
        self.expected_records - self.recovered_records
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(f, "store clean: {} records intact", self.recovered_records)
        } else {
            write!(
                f,
                "recovered {}/{} records ({} of {} data bytes); damaged tail truncated",
                self.recovered_records,
                self.expected_records,
                self.recovered_bytes,
                self.expected_bytes
            )
        }
    }
}

/// A paged store of numeric sequences.
pub struct SequenceStore<P: Pager> {
    pool: BufferPool<P>,
    directory: Vec<DirEntry>,
    /// Next free byte in the data region.
    write_cursor: u64,
    page_size: usize,
    /// Record layout this store reads and writes. Sticky: a store opened
    /// from a v1 file keeps appending v1 records so the file stays
    /// self-consistent; new stores always write v2.
    format: RecordFormat,
    io: Mutex<IoProfile>,
}

impl SequenceStore<MemPager> {
    /// An in-memory store with the paper's 1 KB pages.
    #[allow(clippy::expect_used)]
    pub fn in_memory() -> Self {
        Self::create(MemPager::new(crate::pager::DEFAULT_PAGE_SIZE), 64)
            // tw-allow(expect): a fresh MemPager is empty and cannot fail I/O
            .expect("in-memory store creation cannot fail")
    }
}

impl<P: Pager> SequenceStore<P> {
    /// Creates an empty store on a fresh pager (current, checksummed record
    /// format). The header is flushed immediately so even a writer killed
    /// right after `create` leaves an openable file.
    pub fn create(mut pager: P, pool_pages: usize) -> Result<Self, StoreError> {
        assert_eq!(pager.page_count(), 0, "create() requires an empty pager");
        pager.allocate()?; // header page
        let page_size = pager.page_size();
        let store = Self {
            pool: BufferPool::new(pager, pool_pages),
            directory: Vec::new(),
            write_cursor: 0,
            page_size,
            format: RecordFormat::V2,
            io: Mutex::new(IoProfile::default()),
        };
        store.write_header()?;
        store.pool.flush()?;
        Ok(store)
    }

    /// Parses the header page and prepares an empty-directory store.
    fn open_shell(pager: P, pool_pages: usize) -> Result<(Self, u64, u64), StoreError> {
        let page_size = pager.page_size();
        let page_format = pager.page_format_version();
        let pool = BufferPool::new(pager, pool_pages);
        let mut head = vec![0u8; page_size];
        pool.read(HEADER_PAGE, &mut head)?;
        let mut buf = Bytes::copy_from_slice(&head);
        if buf.get_u32_le() != MAGIC {
            return Err(StoreError::BadHeader("magic"));
        }
        let version = buf.get_u32_le();
        let (format, count, data_bytes) = match version {
            1 => {
                let count = buf.get_u64_le();
                let data_bytes = buf.get_u64_le();
                (RecordFormat::V1, count, data_bytes)
            }
            2 => {
                let header_page_format = buf.get_u32_le();
                let _reserved = buf.get_u32_le();
                let count = buf.get_u64_le();
                let data_bytes = buf.get_u64_le();
                let stored_crc = buf.get_u32_le();
                if crate::checksum::crc32(&head[..HEADER_V2_CRC_SPAN]) != stored_crc {
                    return Err(StoreError::BadHeader("header checksum mismatch"));
                }
                if header_page_format != page_format {
                    return Err(StoreError::PageFormatMismatch {
                        header: header_page_format,
                        pager: page_format,
                    });
                }
                (RecordFormat::V2, count, data_bytes)
            }
            v => return Err(StoreError::UnsupportedVersion(v)),
        };
        let store = Self {
            pool,
            directory: Vec::with_capacity(usize::try_from(count).unwrap_or(0)),
            write_cursor: data_bytes,
            page_size,
            format,
            io: Mutex::new(IoProfile::default()),
        };
        Ok((store, count, data_bytes))
    }

    /// Opens an existing store, rebuilding the directory by decoding the data
    /// region sequentially. Any damage — a corrupt record, a truncated tail —
    /// is an error; use [`SequenceStore::open_recovering`] to salvage instead.
    pub fn open(pager: P, pool_pages: usize) -> Result<Self, StoreError> {
        let (mut store, count, data_bytes) = Self::open_shell(pager, pool_pages)?;
        let format = store.format;
        let data_len = usize::try_from(data_bytes)
            .map_err(|_| StoreError::Corrupt("data extent exceeds address space"))?;
        let mut raw = store.read_span(0, data_len)?;
        let mut offset = 0u64;
        for expected_id in 0..count {
            let before = raw.remaining();
            let rec = decode_record_fmt(format, &mut raw)?;
            if rec.id != expected_id {
                return Err(StoreError::Corrupt("record id out of order"));
            }
            store.directory.push(DirEntry {
                offset,
                len: record_len_u32(rec.values.len()),
            });
            offset += usize_to_u64(before - raw.remaining());
        }
        *store.io.lock() = IoProfile::default();
        Ok(store)
    }

    /// Opens an existing store, salvaging as many records as possible.
    ///
    /// Records are decoded one at a time; the directory is truncated at the
    /// first record that is corrupt, out of order, or runs past the
    /// allocated pages (a crashed writer's unfinished tail). When anything
    /// was lost the trimmed header is persisted so subsequent plain `open`s
    /// succeed. Header-page damage is not recoverable here and still errors.
    pub fn open_recovering(
        pager: P,
        pool_pages: usize,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let (mut store, count, data_bytes) = Self::open_shell(pager, pool_pages)?;
        let format = store.format;
        // Never trust the header to read past what is physically allocated.
        let allocated = store
            .pool
            .page_count()
            .saturating_sub(1)
            .saturating_mul(usize_to_u64(store.page_size));
        let data_end = data_bytes.min(allocated);

        let mut offset = 0u64;
        for expected_id in 0..count {
            let header_need = usize_to_u64(format.header_bytes());
            if offset + header_need > data_end {
                break;
            }
            let mut head = match store.read_span(offset, format.header_bytes()) {
                Ok(b) => b,
                Err(_) => break,
            };
            let _id = head.get_u64_le();
            let len = head.get_u32_le();
            let need_bytes = format.encoded_len(u32_to_usize(len));
            let need = usize_to_u64(need_bytes);
            if len > crate::codec::MAX_RECORD_ELEMS || offset + need > data_end {
                break;
            }
            let mut raw = match store.read_span(offset, need_bytes) {
                Ok(b) => b,
                Err(_) => break,
            };
            match decode_record_fmt(format, &mut raw) {
                Ok(rec) if rec.id == expected_id => {
                    store.directory.push(DirEntry {
                        offset,
                        len: record_len_u32(rec.values.len()),
                    });
                    offset += need;
                }
                _ => break,
            }
        }

        let report = RecoveryReport {
            expected_records: count,
            recovered_records: usize_to_u64(store.directory.len()),
            expected_bytes: data_bytes,
            recovered_bytes: offset,
        };
        store.write_cursor = offset;
        if !report.is_clean() {
            // Persist the trimmed extent so the next open sees a clean store.
            store.write_header()?;
            store.pool.flush()?;
        }
        *store.io.lock() = IoProfile::default();
        Ok((store, report))
    }

    /// Record layout generation this store reads and writes.
    pub fn record_format(&self) -> RecordFormat {
        self.format
    }

    /// Page format generation of the pager stack underneath.
    pub fn page_format_version(&self) -> u32 {
        self.pool.page_format_version()
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the store holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Page size of the underlying pager.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages the data region occupies.
    pub fn data_pages(&self) -> u64 {
        self.write_cursor.div_ceil(usize_to_u64(self.page_size))
    }

    /// Total bytes of record data.
    pub fn data_bytes(&self) -> u64 {
        self.write_cursor
    }

    /// Length (element count) of a stored sequence without reading its data.
    pub fn sequence_len(&self, id: SeqId) -> Result<usize, StoreError> {
        self.dir(id).map(|e| u32_to_usize(e.len))
    }

    /// Number of pages a random read of `id` touches.
    pub fn sequence_pages(&self, id: SeqId) -> Result<u64, StoreError> {
        let e = self.dir(id)?;
        let bytes = usize_to_u64(self.format.encoded_len(u32_to_usize(e.len)));
        Ok(span_pages(e.offset, bytes, usize_to_u64(self.page_size)))
    }

    fn dir(&self, id: SeqId) -> Result<DirEntry, StoreError> {
        usize::try_from(id)
            .ok()
            .and_then(|i| self.directory.get(i))
            .copied()
            .ok_or(StoreError::UnknownSequence(id))
    }

    /// Appends a sequence, returning its id.
    pub fn append(&mut self, values: &[f64]) -> Result<SeqId, StoreError> {
        let id = usize_to_u64(self.directory.len());
        let mut buf = BytesMut::new();
        encode_record_fmt(self.format, &mut buf, id, values);
        let offset = self.write_cursor;
        self.write_span(offset, &buf)?;
        self.directory.push(DirEntry {
            offset,
            len: record_len_u32(values.len()),
        });
        self.write_cursor += usize_to_u64(buf.len());
        Ok(id)
    }

    /// Random-access read of one sequence. Accounts `pages-spanned` random
    /// page reads in the I/O profile.
    pub fn get(&self, id: SeqId) -> Result<Vec<f64>, StoreError> {
        let e = self.dir(id)?;
        let bytes = self.format.encoded_len(u32_to_usize(e.len));
        let mut raw = self.read_span(e.offset, bytes)?;
        let rec = decode_record_fmt(self.format, &mut raw)?;
        if rec.id != id {
            return Err(StoreError::Corrupt("record id does not match directory"));
        }
        let mut io = self.io.lock();
        io.random_requests += 1;
        io.random_page_reads +=
            span_pages(e.offset, usize_to_u64(bytes), usize_to_u64(self.page_size));
        drop(io);
        Ok(rec.values)
    }

    /// Sequential scan over every `(id, values)` pair, materialized.
    /// Prefer [`SequenceStore::scan_visit`] for large databases — it streams
    /// page by page instead of buffering the whole data region.
    pub fn scan(&self) -> Result<Vec<(SeqId, Vec<f64>)>, StoreError> {
        let mut out = Vec::with_capacity(self.directory.len());
        self.scan_visit(|id, values| out.push((id, values)))?;
        Ok(out)
    }

    /// Streaming sequential scan: decodes one record at a time, holding at
    /// most one record plus one page in memory. Accounts one sequential pass
    /// over the whole data region, like [`SequenceStore::scan`].
    pub fn scan_visit<F>(&self, mut visit: F) -> Result<(), StoreError>
    where
        F: FnMut(SeqId, Vec<f64>),
    {
        let mut buf = BytesMut::new();
        let mut page_buf = vec![0u8; self.page_size];
        let mut next_page = 1u64; // page 0 is the header
        let last_page = self.data_page(self.write_cursor.saturating_sub(1));
        for (idx, entry) in self.directory.iter().enumerate() {
            let need = self.format.encoded_len(u32_to_usize(entry.len));
            while buf.len() < need {
                if next_page > last_page {
                    return Err(StoreError::Corrupt("directory points past the data region"));
                }
                self.pool.read(next_page, &mut page_buf)?;
                buf.extend_from_slice(&page_buf);
                next_page += 1;
            }
            let mut record = buf.split_to(need).freeze();
            let rec = decode_record_fmt(self.format, &mut record)?;
            if rec.id != usize_to_u64(idx) {
                return Err(StoreError::Corrupt("record id does not match directory"));
            }
            visit(rec.id, rec.values);
        }
        self.io.lock().sequential_pages_scanned += self.data_pages();
        Ok(())
    }

    /// Takes and resets the accumulated I/O profile.
    pub fn take_io(&self) -> IoProfile {
        std::mem::take(&mut self.io.lock())
    }

    /// Reads the accumulated I/O profile without resetting it.
    pub fn io(&self) -> IoProfile {
        *self.io.lock()
    }

    /// Buffer pool counters (actual caching behaviour, not the model).
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Resets the buffer pool counters (e.g. between measured queries).
    pub fn reset_buffer_stats(&self) {
        self.pool.reset_stats()
    }

    /// Checksum-triggered read retries absorbed by the pager stack since the
    /// store was opened; 0 for stacks without a retry layer. Cumulative —
    /// callers measuring one query take a before/after delta.
    pub fn checksum_retries(&self) -> u64 {
        self.pool.checksum_retries()
    }

    /// Installs `token` as the pager stack's governor for the returned
    /// guard's lifetime: retry backoffs below are capped by the token's
    /// remaining deadline and stop once it cancels. Dropping the guard
    /// clears the governor so later ungoverned queries retry normally.
    /// Unlimited tokens install nothing (zero-cost no-op).
    pub fn govern_scope(&self, token: &crate::govern::CancelToken) -> GovernorGuard<'_, P> {
        if token.is_unlimited() {
            return GovernorGuard { store: None };
        }
        self.pool.set_governor(token);
        GovernorGuard { store: Some(self) }
    }

    /// Persists the header and flushes dirty pages.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.write_header()?;
        self.pool.flush()?;
        Ok(())
    }

    fn write_header(&self) -> Result<(), StoreError> {
        let mut page = BytesMut::with_capacity(self.page_size);
        page.put_u32_le(MAGIC);
        match self.format {
            RecordFormat::V1 => {
                page.put_u32_le(1); // version
                page.put_u64_le(usize_to_u64(self.directory.len()));
                page.put_u64_le(self.write_cursor);
            }
            RecordFormat::V2 => {
                page.put_u32_le(2); // version
                page.put_u32_le(self.pool.page_format_version());
                page.put_u32_le(0); // reserved
                page.put_u64_le(usize_to_u64(self.directory.len()));
                page.put_u64_le(self.write_cursor);
                let mut crc = Crc32::new();
                crc.update(&page[..HEADER_V2_CRC_SPAN]);
                page.put_u32_le(crc.finalize());
            }
        }
        page.resize(self.page_size, 0);
        self.pool.write(HEADER_PAGE, &page)?;
        Ok(())
    }

    /// Data-region page number holding byte `offset`.
    fn data_page(&self, offset: u64) -> u64 {
        1 + offset / usize_to_u64(self.page_size)
    }

    fn read_span(&self, offset: u64, len: usize) -> Result<Bytes, StoreError> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        let ps = usize_to_u64(self.page_size);
        let first = self.data_page(offset);
        let last = self.data_page(offset + usize_to_u64(len) - 1);
        let span = usize::try_from((last - first + 1) * ps).unwrap_or(0);
        let mut raw = BytesMut::with_capacity(span);
        let mut page_buf = vec![0u8; self.page_size];
        for p in first..=last {
            self.pool.read(p, &mut page_buf)?;
            raw.extend_from_slice(&page_buf);
        }
        let start = in_page_usize(offset % ps);
        Ok(raw.freeze().slice(start..start + len))
    }

    fn write_span(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let ps = usize_to_u64(self.page_size);
        // Ensure enough pages exist.
        let end = offset + usize_to_u64(data.len());
        let needed_last = self.data_page(end.saturating_sub(1).max(offset));
        while self.pool.page_count() <= needed_last {
            self.pool.allocate()?;
        }
        let mut page_buf = vec![0u8; self.page_size];
        let mut written = 0usize;
        let mut cursor = offset;
        while written < data.len() {
            let page = self.data_page(cursor);
            let in_page = in_page_usize(cursor % ps);
            let chunk = (self.page_size - in_page).min(data.len() - written);
            // Read-modify-write when the chunk does not cover the whole page.
            if chunk < self.page_size {
                self.pool.read(page, &mut page_buf)?;
            }
            page_buf[in_page..in_page + chunk].copy_from_slice(&data[written..written + chunk]);
            self.pool.write(page, &page_buf)?;
            written += chunk;
            cursor += usize_to_u64(chunk);
        }
        Ok(())
    }
}

/// Clears a store's pager governor on drop (see
/// [`SequenceStore::govern_scope`]).
#[must_use = "the governor is cleared when this guard drops"]
pub struct GovernorGuard<'a, P: Pager> {
    store: Option<&'a SequenceStore<P>>,
}

impl<P: Pager> Drop for GovernorGuard<'_, P> {
    fn drop(&mut self) {
        if let Some(store) = self.store {
            store
                .pool
                .set_governor(&crate::govern::CancelToken::unlimited());
        }
    }
}

/// Number of pages a byte span `[offset, offset+len)` touches.
fn span_pages(offset: u64, len: u64, page_size: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = offset / page_size;
    let last = (offset + len - 1) / page_size;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::FilePager;

    fn sample(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..(i % 40 + 1))
                    .map(|j| (i * 100 + j) as f64 * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn append_and_get_roundtrip() {
        let mut store = SequenceStore::in_memory();
        let data = sample(50);
        for (i, s) in data.iter().enumerate() {
            let id = store.append(s).unwrap();
            assert_eq!(id, i as u64);
        }
        assert_eq!(store.len(), 50);
        for (i, s) in data.iter().enumerate() {
            assert_eq!(&store.get(i as u64).unwrap(), s);
        }
    }

    #[test]
    fn get_unknown_id_errors() {
        let store = SequenceStore::in_memory();
        assert!(matches!(store.get(0), Err(StoreError::UnknownSequence(0))));
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let mut store = SequenceStore::in_memory();
        let data = sample(30);
        for s in &data {
            store.append(s).unwrap();
        }
        let scanned = store.scan().unwrap();
        assert_eq!(scanned.len(), 30);
        for (i, (id, values)) in scanned.iter().enumerate() {
            assert_eq!(*id, i as u64);
            assert_eq!(values, &data[i]);
        }
    }

    #[test]
    fn scan_visit_streams_same_contents_as_scan() {
        let mut store = SequenceStore::in_memory();
        let data = sample(40);
        for s in &data {
            store.append(s).unwrap();
        }
        let materialized = store.scan().unwrap();
        let mut streamed = Vec::new();
        store
            .scan_visit(|id, values| streamed.push((id, values)))
            .unwrap();
        assert_eq!(materialized, streamed);
        // Both account one sequential pass.
        let io = store.take_io();
        assert_eq!(io.sequential_pages_scanned, 2 * store.data_pages());
    }

    #[test]
    fn scan_visit_handles_records_spanning_pages() {
        let mut store = SequenceStore::in_memory();
        // Records far larger than a page (128 f64 per 1 KB page).
        for i in 0..5 {
            store.append(&vec![i as f64; 400]).unwrap();
        }
        let mut seen = 0usize;
        store
            .scan_visit(|id, values| {
                assert_eq!(values, vec![id as f64; 400]);
                seen += 1;
            })
            .unwrap();
        assert_eq!(seen, 5);
    }

    #[test]
    fn io_accounting_random_vs_sequential() {
        let mut store = SequenceStore::in_memory();
        // Long sequences spanning multiple 1 KB pages (128 f64 per page).
        for _ in 0..10 {
            store.append(&vec![1.0; 500]).unwrap();
        }
        store.take_io();
        store.get(3).unwrap();
        let io = store.take_io();
        assert!(io.random_page_reads >= 4, "spans >= 4 pages: {io:?}");
        assert_eq!(io.sequential_pages_scanned, 0);

        store.scan().unwrap();
        let io = store.take_io();
        assert_eq!(io.random_page_reads, 0);
        assert_eq!(io.sequential_pages_scanned, store.data_pages());
    }

    #[test]
    fn sequence_pages_matches_accounting() {
        let mut store = SequenceStore::in_memory();
        store.append(&vec![0.5; 300]).unwrap();
        store.take_io();
        store.get(0).unwrap();
        assert_eq!(
            store.take_io().random_page_reads,
            store.sequence_pages(0).unwrap()
        );
    }

    #[test]
    fn empty_sequence_roundtrip() {
        let mut store = SequenceStore::in_memory();
        let id = store.append(&[]).unwrap();
        assert_eq!(store.get(id).unwrap(), Vec::<f64>::new());
        assert_eq!(store.sequence_len(id).unwrap(), 0);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("twstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pages");
        let data = sample(25);
        {
            let pager = FilePager::create(&path, 1024).unwrap();
            let mut store = SequenceStore::create(pager, 16).unwrap();
            for s in &data {
                store.append(s).unwrap();
            }
            store.flush().unwrap();
        }
        {
            let pager = FilePager::open(&path, 1024).unwrap();
            let store = SequenceStore::open(pager, 16).unwrap();
            assert_eq!(store.len(), 25);
            for (i, s) in data.iter().enumerate() {
                assert_eq!(&store.get(i as u64).unwrap(), s);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let mut pager = MemPager::new(1024);
        pager.allocate().unwrap();
        let err = match SequenceStore::open(pager, 4) {
            Err(e) => e,
            Ok(_) => panic!("garbage header must not open"),
        };
        assert!(matches!(err, StoreError::BadHeader("magic")));
    }

    #[test]
    fn long_sequences_span_pages_correctly() {
        let mut store = SequenceStore::in_memory();
        let long: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let id = store.append(&long).unwrap();
        assert_eq!(store.get(id).unwrap(), long);
        assert!(store.data_pages() > 70);
    }

    /// Builds a legacy v1 store image by hand: v1 header + v1 records.
    fn legacy_v1_pager(seqs: &[Vec<f64>]) -> MemPager {
        let mut data = BytesMut::new();
        for (id, s) in seqs.iter().enumerate() {
            crate::codec::encode_record(&mut data, id as u64, s);
        }
        let mut header = BytesMut::with_capacity(1024);
        header.put_u32_le(MAGIC);
        header.put_u32_le(1);
        header.put_u64_le(seqs.len() as u64);
        header.put_u64_le(data.len() as u64);
        header.resize(1024, 0);
        let mut pager = MemPager::new(1024);
        pager.allocate().unwrap();
        pager.write_page(0, &header).unwrap();
        let mut page = vec![0u8; 1024];
        for (i, chunk) in data.chunks(1024).enumerate() {
            pager.allocate().unwrap();
            page.fill(0);
            page[..chunk.len()].copy_from_slice(chunk);
            pager.write_page(1 + i as u64, &page).unwrap();
        }
        pager
    }

    #[test]
    fn legacy_v1_store_opens_and_stays_v1() {
        let data = sample(12);
        let pager = legacy_v1_pager(&data);
        let mut store = SequenceStore::open(pager, 16).expect("v1 compat open");
        assert_eq!(store.record_format(), RecordFormat::V1);
        for (i, s) in data.iter().enumerate() {
            assert_eq!(&store.get(i as u64).unwrap(), s);
        }
        // Appends stick to the v1 layout so the file stays self-consistent.
        store.append(&[7.0, 8.0]).unwrap();
        store.flush().unwrap();
        let pager = store.pool.into_pager().unwrap();
        let reopened = SequenceStore::open(pager, 16).expect("reopen after append");
        assert_eq!(reopened.record_format(), RecordFormat::V1);
        assert_eq!(reopened.len(), 13);
        assert_eq!(reopened.get(12).unwrap(), vec![7.0, 8.0]);
    }

    #[test]
    fn new_stores_write_v2_headers() {
        let store = SequenceStore::in_memory();
        assert_eq!(store.record_format(), RecordFormat::V2);
        let mut head = vec![0u8; 1024];
        store.pool.read(HEADER_PAGE, &mut head).unwrap();
        assert_eq!(&head[0..4], &MAGIC.to_le_bytes());
        assert_eq!(&head[4..8], &2u32.to_le_bytes());
    }

    #[test]
    fn corrupt_record_fails_open_but_recovers() {
        let mut pager = {
            let mut store = SequenceStore::in_memory();
            for i in 0..8 {
                store.append(&vec![i as f64; 40]).unwrap();
            }
            store.flush().unwrap();
            store.pool.into_pager().unwrap()
        };
        // Flip a byte inside record 5's values (record 0..4 live earlier).
        let victim_offset = {
            let store = SequenceStore::open(MemPagerClone::clone_pages(&pager), 8).unwrap();
            store.directory[5].offset
        };
        let page = 1 + victim_offset / 1024;
        let in_page = (victim_offset % 1024) as usize + 20;
        let mut buf = vec![0u8; 1024];
        pager.read_page(page, &mut buf).unwrap();
        buf[in_page] ^= 0xFF;
        pager.write_page(page, &buf).unwrap();

        let clone = MemPagerClone::clone_pages(&pager);
        assert!(SequenceStore::open(clone, 8).is_err(), "strict open fails");
        let (store, report) = SequenceStore::open_recovering(pager, 8).expect("recovery");
        assert_eq!(report.expected_records, 8);
        assert_eq!(report.recovered_records, 5, "prefix before the damage");
        for id in 0..5u64 {
            assert_eq!(store.get(id).unwrap(), vec![id as f64; 40]);
        }
    }

    /// Test helper: deep-copies a MemPager through the public Pager API.
    struct MemPagerClone;
    impl MemPagerClone {
        fn clone_pages(src: &MemPager) -> MemPager {
            let mut dst = MemPager::new(src.page_size());
            let mut buf = vec![0u8; src.page_size()];
            for p in 0..src.page_count() {
                dst.allocate().unwrap();
                src.read_page(p, &mut buf).unwrap();
                dst.write_page(p, &buf).unwrap();
            }
            dst
        }
    }

    #[test]
    fn span_pages_math() {
        assert_eq!(span_pages(0, 0, 1024), 0);
        assert_eq!(span_pages(0, 1, 1024), 1);
        assert_eq!(span_pages(0, 1024, 1024), 1);
        assert_eq!(span_pages(0, 1025, 1024), 2);
        assert_eq!(span_pages(1023, 2, 1024), 2);
        assert_eq!(span_pages(1024, 1024, 1024), 1);
    }
}
