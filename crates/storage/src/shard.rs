//! Sharded corpus layout: the manifest plus per-shard segment files.
//!
//! A corpus too large for one store file is split into fixed-capacity
//! *shards*, each a directory sibling holding its own sequence segment,
//! R-tree and envelope sidecar:
//!
//! ```text
//! corpus/
//!   manifest.twsm      shard directory: base-id ranges, CRC'd
//!   shard-000.tws      sequence segment (v2 CRC-paged store)
//!   shard-000.twr      per-shard R-tree (STR bulk-loaded)
//!   shard-000.twev     per-shard envelope sidecar
//!   shard-001.tws      ...
//! ```
//!
//! The manifest is the commit point. Segments, trees and sidecars are
//! written first; the manifest is written last via temp-file + fsync +
//! rename, so a crash mid-ingest leaves either the previous manifest or
//! none — never a manifest naming half-written shards. Its explicit
//! little-endian layout:
//!
//! ```text
//! manifest := magic:"TWSM" version:u32 page_size:u64 count:u64 shard* crc:u32
//! shard    := base_id:u64 len:u64
//! ```
//!
//! Shards own contiguous global-id ranges: shard `i` holds global ids
//! `[base_id, base_id + len)`, stored locally as `0..len`, and
//! `base_id[i+1] == base_id[i] + len[i]` with `base_id[0] == 0` — decode
//! rejects anything else, so a loaded manifest always yields a total,
//! gap-free id mapping.
//!
//! Segment files always use the full protective stack
//! ([`SegmentPager`]). Unlike the sniffing openers in `openfile`, the
//! shard constructors return the *concrete* stack: shard fan-out shares
//! `&SequenceStore` across scoped threads, which needs `P: Send`, and a
//! boxed `dyn Pager` erases that bound.

use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::checksum::{crc32, ChecksumPager};
use crate::convert::usize_to_u64;
use crate::pager::{FilePager, PagerError};
use crate::retry::{RetryPager, RetryPolicy};
use crate::seqstore::{RecoveryReport, SequenceStore, StoreError};

const MAGIC: &[u8; 4] = b"TWSM";
const VERSION: u32 = 1;

/// The concrete pager stack every shard segment uses: checksummed pages
/// behind bounded retry over a file. Kept un-boxed so `SequenceStore<SegmentPager>`
/// is `Send + Sync` and shards can be queried from scoped threads.
pub type SegmentPager = RetryPager<ChecksumPager<FilePager>>;

/// A sequence store over the shard segment stack.
pub type SegmentStore = SequenceStore<SegmentPager>;

/// Creates a new shard segment file with the full protective stack.
pub fn create_shard_segment<Q: AsRef<Path>>(
    path: Q,
    page_size: usize,
    pool_pages: usize,
) -> Result<SegmentStore, StoreError> {
    let file = FilePager::create(path, page_size)?;
    let stack = RetryPager::new(ChecksumPager::new(file), RetryPolicy::default());
    SequenceStore::create(stack, pool_pages)
}

/// Opens a shard segment, recovering a crashed writer's ragged tail.
/// Segments are always written through [`SegmentPager`], so no format
/// sniffing is needed — a plain-paged file fails the CRC open and is
/// surfaced as the corruption it is.
pub fn open_shard_segment<Q: AsRef<Path>>(
    path: Q,
    page_size: usize,
    pool_pages: usize,
) -> Result<(SegmentStore, RecoveryReport), StoreError> {
    let (file, _trimmed_bytes) = FilePager::open_trimmed(path, page_size)?;
    let stack = RetryPager::new(ChecksumPager::new(file), RetryPolicy::default());
    SequenceStore::open_recovering(stack, pool_pages)
}

/// Path of the corpus manifest inside a shard directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.twsm")
}

/// Path of shard `index`'s sequence segment.
pub fn segment_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}.tws"))
}

/// Path of shard `index`'s persisted R-tree.
pub fn rtree_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}.twr"))
}

/// Path of shard `index`'s envelope sidecar.
pub fn sidecar_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:03}.twev"))
}

/// One shard's slice of the global id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// First global id stored in this shard.
    pub base_id: u64,
    /// Number of sequences in this shard (local ids `0..len`).
    pub len: u64,
}

/// Errors produced while decoding or loading a persisted manifest.
#[derive(Debug)]
pub enum ShardError {
    /// The buffer ended before the declared layout was complete.
    Truncated,
    /// Magic bytes absent — not a manifest file.
    BadMagic,
    /// Layout generation this build does not know.
    UnsupportedVersion(u32),
    /// The trailing CRC-32 does not match the bytes.
    ChecksumMismatch,
    /// Decoded fields contradict the shard invariants.
    Inconsistent(&'static str),
    /// Underlying file I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Truncated => write!(f, "shard manifest truncated"),
            ShardError::BadMagic => write!(f, "shard manifest magic missing"),
            ShardError::UnsupportedVersion(v) => {
                write!(f, "shard manifest version {v} not supported")
            }
            ShardError::ChecksumMismatch => write!(f, "shard manifest checksum mismatch"),
            ShardError::Inconsistent(what) => write!(f, "shard manifest inconsistent: {what}"),
            ShardError::Io(e) => write!(f, "shard manifest io: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// The corpus directory's shard map: which global-id range lives where.
///
/// Built up during ingest via [`ShardManifest::push_shard`] and persisted
/// *last* ([`ShardManifest::save_file`] is atomic), so its existence
/// certifies that every shard it names was fully folded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    page_size: u64,
    shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// An empty manifest for segments of the given physical page size.
    pub fn new(page_size: usize) -> Self {
        ShardManifest {
            page_size: usize_to_u64(page_size),
            shards: Vec::new(),
        }
    }

    /// Physical page size every segment was created with.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Appends the next shard, assigning it the next contiguous base id,
    /// and returns that base id.
    pub fn push_shard(&mut self, len: u64) -> u64 {
        let base_id = self.shards.last().map(|s| s.base_id + s.len).unwrap_or(0);
        self.shards.push(ShardEntry { base_id, len });
        base_id
    }

    /// The shard entries in id order.
    pub fn shards(&self) -> &[ShardEntry] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total sequences across every shard.
    pub fn total_sequences(&self) -> u64 {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// Locates a global id: `(shard index, local id)`.
    pub fn locate(&self, id: u64) -> Option<(usize, u64)> {
        // Contiguity (enforced at decode, maintained by push_shard) makes
        // the ranges sorted and disjoint, so a binary search suffices.
        let idx = self
            .shards
            .partition_point(|s| s.base_id + s.len <= id)
            .min(self.shards.len().saturating_sub(1));
        let entry = self.shards.get(idx)?;
        if id >= entry.base_id && id < entry.base_id + entry.len {
            Some((idx, id - entry.base_id))
        } else {
            None
        }
    }

    /// Serializes to the documented binary layout (infallible).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.page_size);
        buf.put_u64_le(usize_to_u64(self.shards.len()));
        for shard in &self.shards {
            buf.put_u64_le(shard.base_id);
            buf.put_u64_le(shard.len);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Decodes the documented layout, validating magic, version, CRC and
    /// the contiguous-range invariant.
    pub fn decode(data: &[u8]) -> Result<Self, ShardError> {
        const TRAILER: usize = 4;
        if data.len() < MAGIC.len() + 4 + 8 + 8 + TRAILER {
            return Err(ShardError::Truncated);
        }
        let (body, trailer) = data.split_at(data.len() - TRAILER);
        let mut crc_bytes = Bytes::copy_from_slice(trailer);
        if crc_bytes.get_u32_le() != crc32(body) {
            return Err(ShardError::ChecksumMismatch);
        }
        let mut buf = Bytes::copy_from_slice(body);
        if buf.chunk().get(..MAGIC.len()) != Some(MAGIC.as_slice()) {
            return Err(ShardError::BadMagic);
        }
        buf.advance(MAGIC.len());
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(ShardError::UnsupportedVersion(version));
        }
        let page_size = buf.get_u64_le();
        if page_size == 0 {
            return Err(ShardError::Inconsistent("page size zero"));
        }
        let count = buf.get_u64_le();
        let count = usize::try_from(count).map_err(|_| ShardError::Truncated)?;
        let mut shards = Vec::new();
        let mut next_base = 0u64;
        for _ in 0..count {
            if buf.remaining() < 16 {
                return Err(ShardError::Truncated);
            }
            let base_id = buf.get_u64_le();
            let len = buf.get_u64_le();
            if base_id != next_base {
                return Err(ShardError::Inconsistent("shard base ids not contiguous"));
            }
            next_base = base_id
                .checked_add(len)
                .ok_or(ShardError::Inconsistent("shard id range overflows u64"))?;
            shards.push(ShardEntry { base_id, len });
        }
        Ok(ShardManifest { page_size, shards })
    }

    /// Persists the manifest atomically: encoded bytes go to a temp file
    /// which is fsynced and renamed over `path`, then the parent directory
    /// is fsynced. A crash at any point leaves the previous manifest (or
    /// none) intact — the rename is the commit point of the whole ingest.
    pub fn save_file(&self, path: &Path) -> Result<(), ShardError> {
        let tmp = path.with_extension("twsm.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                // Directory fsync is advisory on some filesystems; the
                // rename itself is already atomic.
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and validates a manifest from `path`.
    pub fn load_file(path: &Path) -> Result<Self, ShardError> {
        let data = std::fs::read(path)?;
        ShardManifest::decode(&data)
    }
}

impl From<PagerError> for ShardError {
    fn from(e: PagerError) -> Self {
        ShardError::Io(std::io::Error::other(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_contiguous_base_ids() {
        let mut m = ShardManifest::new(1024);
        assert_eq!(m.push_shard(10), 0);
        assert_eq!(m.push_shard(7), 10);
        assert_eq!(m.push_shard(0), 17);
        assert_eq!(m.push_shard(3), 17);
        assert_eq!(m.total_sequences(), 20);
        assert_eq!(m.shard_count(), 4);
    }

    #[test]
    fn locate_maps_global_to_local() {
        let mut m = ShardManifest::new(1024);
        m.push_shard(10);
        m.push_shard(5);
        m.push_shard(8);
        assert_eq!(m.locate(0), Some((0, 0)));
        assert_eq!(m.locate(9), Some((0, 9)));
        assert_eq!(m.locate(10), Some((1, 0)));
        assert_eq!(m.locate(14), Some((1, 4)));
        assert_eq!(m.locate(15), Some((2, 0)));
        assert_eq!(m.locate(22), Some((2, 7)));
        assert_eq!(m.locate(23), None);
        assert_eq!(ShardManifest::new(64).locate(0), None);
    }

    #[test]
    fn manifest_roundtrips_through_bytes() {
        let mut m = ShardManifest::new(4096);
        m.push_shard(1000);
        m.push_shard(1000);
        m.push_shard(42);
        let decoded = ShardManifest::decode(&m.encode()).expect("decode");
        assert_eq!(decoded, m);
        assert_eq!(decoded.page_size(), 4096);
    }

    #[test]
    fn corruption_and_junk_are_detected() {
        let mut m = ShardManifest::new(1024);
        m.push_shard(3);
        let mut bytes = m.encode();
        if let Some(b) = bytes.get_mut(10) {
            *b ^= 0xFF;
        }
        assert!(matches!(
            ShardManifest::decode(&bytes),
            Err(ShardError::ChecksumMismatch)
        ));
        assert!(matches!(
            ShardManifest::decode(&[1, 2, 3]),
            Err(ShardError::Truncated)
        ));
    }

    #[test]
    fn non_contiguous_ranges_are_rejected() {
        let mut m = ShardManifest::new(1024);
        m.push_shard(4);
        m.push_shard(4);
        let mut bytes = m.encode();
        // Overwrite shard 1's base_id (offset: 4 magic + 4 ver + 8 ps +
        // 8 count + 16 shard0 = 40) with a gap, then re-CRC.
        bytes.truncate(bytes.len() - 4);
        bytes[40..48].copy_from_slice(&9u64.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ShardManifest::decode(&bytes),
            Err(ShardError::Inconsistent(_))
        ));
    }

    #[test]
    fn save_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("tw_shard_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = manifest_path(&dir);
        let mut m = ShardManifest::new(1024);
        m.push_shard(128);
        m.save_file(&path).expect("save");
        // No temp file is left behind and the manifest loads.
        assert!(!path.with_extension("twsm.tmp").exists());
        let loaded = ShardManifest::load_file(&path).expect("load");
        assert_eq!(loaded, m);
        // Overwriting is just another atomic commit.
        m.push_shard(64);
        m.save_file(&path).expect("resave");
        assert_eq!(ShardManifest::load_file(&path).expect("reload"), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_files_roundtrip_and_recover() {
        let dir = std::env::temp_dir().join(format!("tw_shard_segment_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = segment_path(&dir, 0);
        {
            let mut store = create_shard_segment(&path, 1024, 8).expect("create");
            for i in 0..5u64 {
                store.append(&[i as f64, (i + 1) as f64]).expect("append");
            }
            store.flush().expect("flush");
        }
        let (store, report) = open_shard_segment(&path, 1024, 8).expect("open");
        assert!(report.is_clean(), "{report}");
        assert_eq!(store.len(), 5);
        assert_eq!(store.get(3).expect("get"), vec![3.0, 4.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_paths_are_zero_padded() {
        let dir = Path::new("/corpus");
        assert_eq!(
            segment_path(dir, 7),
            Path::new("/corpus/shard-007.tws").to_path_buf()
        );
        assert_eq!(
            rtree_path(dir, 123),
            Path::new("/corpus/shard-123.twr").to_path_buf()
        );
        assert_eq!(
            sidecar_path(dir, 0),
            Path::new("/corpus/shard-000.twev").to_path_buf()
        );
        assert_eq!(
            manifest_path(dir),
            Path::new("/corpus/manifest.twsm").to_path_buf()
        );
    }
}
