//! Write-ahead log for concurrent ingest.
//!
//! The WAL makes appends durable *before* they touch the main store: a
//! sequence append, its derived feature vector, the R-tree insert and the
//! folding checkpoint are each logged as a length-prefixed, CRC'd record.
//! After a crash the log is replayed against the recovered store so no
//! *acknowledged* append is lost, then truncated once a checkpoint folds the
//! state into the TWR2/sidecar files.
//!
//! ## File layout
//!
//! Page 0 is a header page; records live back-to-back in a byte-addressed
//! data region from page 1, mirroring [`crate::SequenceStore`]'s layout:
//!
//! ```text
//! header:  magic "TWL1" | version | page_format | reserved
//!          | committed_records u64 | committed_bytes u64 | crc32
//! record:  kind u8 | payload_len u32 | payload | crc32(kind‖len‖payload)
//! ```
//!
//! ## Durability protocol
//!
//! [`Wal::append`] stages a record (written, not yet acknowledged);
//! [`Wal::commit`] syncs the data pages, *then* publishes the new extent in
//! the header and syncs again. An append is **acknowledged** only when
//! `commit` returns. Replay reads exactly `committed_bytes`: a crash between
//! the two syncs leaves the old extent in force and the torn tail invisible,
//! so recovery never surfaces a half-written record as data and never drops
//! a record that was acknowledged. Damage *inside* the committed extent (bit
//! rot, short reads) fails the record CRC and surfaces as a typed
//! [`StoreError::Corrupt`] — never a silent truncation of acknowledged work.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::checksum::{ChecksumPager, Crc32};
use crate::convert::{in_page_usize, u32_to_usize, usize_to_u64};
use crate::pager::{FilePager, Pager};
use crate::retry::{RetryPager, RetryPolicy};
use crate::seqstore::StoreError;

/// Magic marking a WAL header page ("TWL1").
const MAGIC: u32 = 0x5457_4C31;
const VERSION: u32 = 1;
const HEADER_PAGE: u64 = 0;
/// Bytes of the header covered by its trailing CRC.
const HEADER_CRC_SPAN: usize = 32;
/// Full header size: the CRC-covered fields plus the CRC itself. Pages must
/// be at least this big for page 0 to hold the header.
const HEADER_BYTES: usize = HEADER_CRC_SPAN + 4;
/// kind (1) + payload length (4).
const RECORD_PREFIX_BYTES: usize = 5;
/// Trailing CRC over kind‖len‖payload.
const RECORD_CRC_BYTES: usize = 4;

/// Dimensionality of the feature vectors logged by feature/rtree records
/// (the paper's 4-D `(first, last, min, max)` features).
pub const WAL_FEATURE_DIMS: usize = 4;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A sequence was appended to the store under `id`.
    AppendSequence { id: u64, values: Vec<f64> },
    /// The feature sidecar entry for `id` was computed.
    FeatureUpdate {
        id: u64,
        feature: [f64; WAL_FEATURE_DIMS],
    },
    /// The R-tree gained a data entry for `id` at `point`.
    RtreeInsert {
        id: u64,
        point: [f64; WAL_FEATURE_DIMS],
    },
    /// Everything up to epoch `epoch` was folded into the base files.
    Checkpoint { epoch: u64 },
}

const KIND_APPEND: u8 = 1;
const KIND_FEATURE: u8 = 2;
const KIND_RTREE: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::AppendSequence { .. } => KIND_APPEND,
            WalRecord::FeatureUpdate { .. } => KIND_FEATURE,
            WalRecord::RtreeInsert { .. } => KIND_RTREE,
            WalRecord::Checkpoint { .. } => KIND_CHECKPOINT,
        }
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::AppendSequence { id, values } => {
                buf.put_u64_le(*id);
                buf.put_u32_le(crate::convert::record_len_u32(values.len()));
                for v in values {
                    buf.put_f64_le(*v);
                }
            }
            WalRecord::FeatureUpdate { id, feature } => {
                buf.put_u64_le(*id);
                for v in feature {
                    buf.put_f64_le(*v);
                }
            }
            WalRecord::RtreeInsert { id, point } => {
                buf.put_u64_le(*id);
                for v in point {
                    buf.put_f64_le(*v);
                }
            }
            WalRecord::Checkpoint { epoch } => buf.put_u64_le(*epoch),
        }
    }

    fn decode_payload(kind: u8, mut payload: Bytes) -> Result<Self, StoreError> {
        let need = |n: usize, payload: &Bytes| -> Result<(), StoreError> {
            if payload.remaining() < n {
                Err(StoreError::Corrupt("WAL record payload too short"))
            } else {
                Ok(())
            }
        };
        match kind {
            KIND_APPEND => {
                need(12, &payload)?;
                let id = payload.get_u64_le();
                let count = payload.get_u32_le();
                if count > crate::codec::MAX_RECORD_ELEMS {
                    return Err(StoreError::Corrupt("WAL record length exceeds bound"));
                }
                let n = u32_to_usize(count);
                need(n * 8, &payload)?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(payload.get_f64_le());
                }
                if payload.remaining() > 0 {
                    return Err(StoreError::Corrupt("WAL record payload has excess bytes"));
                }
                Ok(WalRecord::AppendSequence { id, values })
            }
            KIND_FEATURE | KIND_RTREE => {
                need(8 + WAL_FEATURE_DIMS * 8, &payload)?;
                let id = payload.get_u64_le();
                let mut dims = [0.0f64; WAL_FEATURE_DIMS];
                for d in &mut dims {
                    *d = payload.get_f64_le();
                }
                if payload.remaining() > 0 {
                    return Err(StoreError::Corrupt("WAL record payload has excess bytes"));
                }
                Ok(if kind == KIND_FEATURE {
                    WalRecord::FeatureUpdate { id, feature: dims }
                } else {
                    WalRecord::RtreeInsert { id, point: dims }
                })
            }
            KIND_CHECKPOINT => {
                need(8, &payload)?;
                let epoch = payload.get_u64_le();
                if payload.remaining() > 0 {
                    return Err(StoreError::Corrupt("WAL record payload has excess bytes"));
                }
                Ok(WalRecord::Checkpoint { epoch })
            }
            _ => Err(StoreError::Corrupt("WAL record kind unknown")),
        }
    }
}

/// What replay found while reopening a WAL (mirrors
/// [`crate::RecoveryReport`] for the main store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalRecoveryReport {
    /// Records inside the committed (acknowledged) extent, all replayed.
    pub committed_records: u64,
    /// Bytes of the committed extent.
    pub committed_bytes: u64,
    /// Bytes of whole pages allocated past the committed extent: a crashed
    /// writer's staged-but-unacknowledged tail, discarded by design. Slack
    /// inside the last committed page does not count.
    pub uncommitted_tail_bytes: u64,
}

impl WalRecoveryReport {
    /// Whether the log carried no torn (staged, never acknowledged) tail.
    pub fn is_clean(&self) -> bool {
        self.uncommitted_tail_bytes == 0
    }
}

impl std::fmt::Display for WalRecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "wal clean: {} committed records ({} bytes)",
                self.committed_records, self.committed_bytes
            )
        } else {
            write!(
                f,
                "wal replayed {} committed records ({} bytes); \
                 discarded {} unacknowledged tail bytes",
                self.committed_records, self.committed_bytes, self.uncommitted_tail_bytes
            )
        }
    }
}

/// A write-ahead log over any pager stack.
///
/// Unlike the main store the WAL bypasses the buffer pool: it is written
/// once, sequentially, and replayed once on open — caching would only delay
/// durability.
pub struct Wal<P: Pager> {
    pager: P,
    page_size: usize,
    committed_bytes: u64,
    committed_records: u64,
    staged_bytes: u64,
    staged_records: u64,
    /// Append-kind records logged over this handle's lifetime (observability;
    /// survives truncation, unlike the extent counters).
    appends_logged: u64,
}

/// A WAL over a runtime-chosen pager stack (see [`create_wal_file`]).
pub type DynWal = Wal<Box<dyn Pager>>;

impl<P: Pager> Wal<P> {
    /// Creates an empty log on a fresh pager. The header is flushed
    /// immediately so a writer killed right after `create` leaves an
    /// openable file.
    pub fn create(mut pager: P) -> Result<Self, StoreError> {
        assert_eq!(pager.page_count(), 0, "create() requires an empty pager");
        let page_size = pager.page_size();
        if page_size < HEADER_BYTES {
            return Err(StoreError::BadHeader("WAL page size below header size"));
        }
        pager.allocate()?; // header page
        let mut wal = Self {
            pager,
            page_size,
            committed_bytes: 0,
            committed_records: 0,
            staged_bytes: 0,
            staged_records: 0,
            appends_logged: 0,
        };
        wal.write_header()?;
        wal.pager.sync()?;
        Ok(wal)
    }

    /// Opens an existing log and replays its committed extent.
    ///
    /// Returns the acknowledged records in append order plus a report. Any
    /// staged-but-unacknowledged tail past the committed extent is discarded
    /// (and counted in the report); damage *inside* the committed extent is
    /// a typed [`StoreError::Corrupt`] — acknowledged records are never
    /// silently dropped.
    pub fn open_recovering(
        pager: P,
    ) -> Result<(Self, Vec<WalRecord>, WalRecoveryReport), StoreError> {
        let page_size = pager.page_size();
        let page_format = pager.page_format_version();
        if page_size < HEADER_BYTES {
            return Err(StoreError::BadHeader("WAL page size below header size"));
        }
        if pager.page_count() == 0 {
            return Err(StoreError::BadHeader("WAL file has no header page"));
        }
        let mut head = vec![0u8; page_size];
        pager.read_page(HEADER_PAGE, &mut head)?;
        let mut buf = Bytes::copy_from_slice(&head);
        if buf.get_u32_le() != MAGIC {
            return Err(StoreError::BadHeader("WAL magic"));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let header_page_format = buf.get_u32_le();
        let _reserved = buf.get_u32_le();
        let committed_records = buf.get_u64_le();
        let committed_bytes = buf.get_u64_le();
        let stored_crc = buf.get_u32_le();
        // tw-allow(slice-index): page_size >= HEADER_BYTES checked on entry
        if crate::checksum::crc32(&head[..HEADER_CRC_SPAN]) != stored_crc {
            return Err(StoreError::BadHeader("WAL header checksum mismatch"));
        }
        if header_page_format != page_format {
            return Err(StoreError::PageFormatMismatch {
                header: header_page_format,
                pager: page_format,
            });
        }
        let allocated = pager
            .page_count()
            .saturating_sub(1)
            .saturating_mul(usize_to_u64(page_size));
        if committed_bytes > allocated {
            // The commit protocol syncs data before publishing the extent;
            // an extent past the allocation means the header lies.
            return Err(StoreError::Corrupt(
                "WAL committed extent exceeds allocated pages",
            ));
        }

        let wal = Self {
            pager,
            page_size,
            committed_bytes,
            committed_records,
            staged_bytes: 0,
            staged_records: 0,
            appends_logged: 0,
        };
        let mut records = Vec::with_capacity(usize::try_from(committed_records).unwrap_or(0));
        let mut offset = 0u64;
        for _ in 0..committed_records {
            let (rec, consumed) = wal.read_record(offset, committed_bytes)?;
            offset += consumed;
            records.push(rec);
        }
        if offset != committed_bytes {
            return Err(StoreError::Corrupt(
                "WAL committed extent does not end on a record boundary",
            ));
        }
        let committed_page_bytes = committed_bytes
            .div_ceil(usize_to_u64(page_size))
            .saturating_mul(usize_to_u64(page_size));
        let report = WalRecoveryReport {
            committed_records,
            committed_bytes,
            uncommitted_tail_bytes: allocated.saturating_sub(committed_page_bytes),
        };
        Ok((wal, records, report))
    }

    /// Stages a record: written to the log's pages but **not** yet
    /// acknowledged. Call [`Wal::commit`] to make it durable.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let mut payload = BytesMut::new();
        record.encode_payload(&mut payload);
        let mut framed =
            BytesMut::with_capacity(RECORD_PREFIX_BYTES + payload.len() + RECORD_CRC_BYTES);
        framed.put_u8(record.kind());
        framed.put_u32_le(crate::convert::record_len_u32(payload.len()));
        framed.extend_from_slice(&payload);
        let mut crc = Crc32::new();
        crc.update(&framed);
        framed.put_u32_le(crc.finalize());
        let offset = self.committed_bytes + self.staged_bytes;
        self.write_span(offset, &framed)?;
        self.staged_bytes += usize_to_u64(framed.len());
        self.staged_records += 1;
        if matches!(record, WalRecord::AppendSequence { .. }) {
            self.appends_logged += 1;
        }
        Ok(())
    }

    /// Acknowledges every staged record: syncs the data pages, then
    /// publishes the grown extent in the header and syncs again. After
    /// `commit` returns, replay is guaranteed to surface the records.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.staged_records == 0 {
            return Ok(());
        }
        self.pager.sync()?;
        self.committed_bytes += self.staged_bytes;
        self.committed_records += self.staged_records;
        self.staged_bytes = 0;
        self.staged_records = 0;
        self.write_header()?;
        self.pager.sync()?;
        Ok(())
    }

    /// Stages and immediately acknowledges one record.
    pub fn append_commit(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        self.append(record)?;
        self.commit()
    }

    /// Resets the log to empty after a checkpoint folded its contents into
    /// the base files. Old record bytes past the (now zero) extent are inert
    /// — replay never reads beyond the committed extent.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.committed_bytes = 0;
        self.committed_records = 0;
        self.staged_bytes = 0;
        self.staged_records = 0;
        self.write_header()?;
        self.pager.sync()?;
        Ok(())
    }

    /// Acknowledged records currently in the log.
    pub fn committed_records(&self) -> u64 {
        self.committed_records
    }

    /// Acknowledged bytes currently in the log.
    pub fn committed_bytes(&self) -> u64 {
        self.committed_bytes
    }

    /// Staged (written, unacknowledged) records awaiting [`Wal::commit`].
    pub fn staged_records(&self) -> u64 {
        self.staged_records
    }

    /// `AppendSequence` records logged over this handle's lifetime
    /// (monotonic; not reset by [`Wal::truncate`]).
    pub fn appends_logged(&self) -> u64 {
        self.appends_logged
    }

    /// Reads and CRC-verifies one record at `offset`, bounded by `limit`.
    fn read_record(&self, offset: u64, limit: u64) -> Result<(WalRecord, u64), StoreError> {
        let prefix_need = usize_to_u64(RECORD_PREFIX_BYTES);
        if offset + prefix_need > limit {
            return Err(StoreError::Corrupt("WAL record header past extent"));
        }
        let mut prefix = self.read_span(offset, RECORD_PREFIX_BYTES)?;
        let kind = prefix.get_u8();
        let payload_len = prefix.get_u32_le();
        if payload_len > crate::codec::MAX_RECORD_ELEMS * 8 + 64 {
            return Err(StoreError::Corrupt("WAL record length exceeds bound"));
        }
        let total = RECORD_PREFIX_BYTES + u32_to_usize(payload_len) + RECORD_CRC_BYTES;
        if offset + usize_to_u64(total) > limit {
            return Err(StoreError::Corrupt("WAL record body past extent"));
        }
        let framed = self.read_span(offset, total)?;
        let crc_at = total - RECORD_CRC_BYTES;
        let stored = framed.slice(crc_at..total).get_u32_le();
        // tw-allow(slice-index): read_span returned exactly `total` > crc_at bytes
        if crate::checksum::crc32(&framed[..crc_at]) != stored {
            return Err(StoreError::Corrupt("WAL record checksum mismatch"));
        }
        let payload = framed.slice(RECORD_PREFIX_BYTES..crc_at);
        let rec = WalRecord::decode_payload(kind, payload)?;
        Ok((rec, usize_to_u64(total)))
    }

    fn write_header(&mut self) -> Result<(), StoreError> {
        let mut page = BytesMut::with_capacity(self.page_size);
        page.put_u32_le(MAGIC);
        page.put_u32_le(VERSION);
        page.put_u32_le(self.pager.page_format_version());
        page.put_u32_le(0); // reserved
        page.put_u64_le(self.committed_records);
        page.put_u64_le(self.committed_bytes);
        let mut crc = Crc32::new();
        // tw-allow(slice-index): the six fields just written total exactly HEADER_CRC_SPAN bytes
        crc.update(&page[..HEADER_CRC_SPAN]);
        page.put_u32_le(crc.finalize());
        page.resize(self.page_size, 0);
        self.pager.write_page(HEADER_PAGE, &page)?;
        Ok(())
    }

    /// Data-region page number holding byte `offset`.
    fn data_page(&self, offset: u64) -> u64 {
        1 + offset / usize_to_u64(self.page_size)
    }

    fn read_span(&self, offset: u64, len: usize) -> Result<Bytes, StoreError> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        let ps = usize_to_u64(self.page_size);
        let first = self.data_page(offset);
        let last = self.data_page(offset + usize_to_u64(len) - 1);
        let mut raw = BytesMut::new();
        let mut page_buf = vec![0u8; self.page_size];
        for p in first..=last {
            self.pager.read_page(p, &mut page_buf)?;
            raw.extend_from_slice(&page_buf);
        }
        let start = in_page_usize(offset % ps);
        Ok(raw.freeze().slice(start..start + len))
    }

    fn write_span(&mut self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let ps = usize_to_u64(self.page_size);
        let end = offset + usize_to_u64(data.len());
        let needed_last = self.data_page(end.saturating_sub(1).max(offset));
        while self.pager.page_count() <= needed_last {
            self.pager.allocate()?;
        }
        let mut page_buf = vec![0u8; self.page_size];
        let mut written = 0usize;
        let mut cursor = offset;
        while written < data.len() {
            let page = self.data_page(cursor);
            let in_page = in_page_usize(cursor % ps);
            let chunk = (self.page_size - in_page).min(data.len() - written);
            if chunk < self.page_size {
                self.pager.read_page(page, &mut page_buf)?;
            }
            // tw-allow(slice-index): chunk = min(page_size - in_page, data.len() - written)
            page_buf[in_page..in_page + chunk].copy_from_slice(&data[written..written + chunk]);
            self.pager.write_page(page, &page_buf)?;
            written += chunk;
            cursor += usize_to_u64(chunk);
        }
        Ok(())
    }
}

/// Creates a new WAL file with the full protective stack (checksummed pages
/// behind bounded retry), matching the v2 store stack.
pub fn create_wal_file<Q: AsRef<std::path::Path>>(
    path: Q,
    page_size: usize,
) -> Result<DynWal, StoreError> {
    let file = FilePager::create(path, page_size)?;
    let stack: Box<dyn Pager> = Box::new(RetryPager::new(
        ChecksumPager::new(file),
        RetryPolicy::default(),
    ));
    Wal::create(stack)
}

/// Opens an existing WAL file, trimming a trailing partial physical page
/// (writer killed mid-write) before replaying the committed extent.
pub fn open_wal_file<Q: AsRef<std::path::Path>>(
    path: Q,
    page_size: usize,
) -> Result<(DynWal, Vec<WalRecord>, WalRecoveryReport), StoreError> {
    let (file, _trimmed) = FilePager::open_trimmed(path, page_size)?;
    let stack: Box<dyn Pager> = Box::new(RetryPager::new(
        ChecksumPager::new(file),
        RetryPolicy::default(),
    ));
    Wal::open_recovering(stack)
}

/// Opens `path` as a WAL if it exists, creating it otherwise. Returns the
/// replayed records (empty for a fresh log).
pub fn open_or_create_wal_file<Q: AsRef<std::path::Path>>(
    path: Q,
    page_size: usize,
) -> Result<(DynWal, Vec<WalRecord>, WalRecoveryReport), StoreError> {
    if path.as_ref().exists() {
        open_wal_file(path, page_size)
    } else {
        Ok((
            create_wal_file(path, page_size)?,
            Vec::new(),
            WalRecoveryReport::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn records() -> Vec<WalRecord> {
        vec![
            WalRecord::AppendSequence {
                id: 0,
                values: vec![20.0, 21.0, 21.0, 20.0, 23.0],
            },
            WalRecord::FeatureUpdate {
                id: 0,
                feature: [20.0, 23.0, 20.0, 23.0],
            },
            WalRecord::RtreeInsert {
                id: 0,
                point: [20.0, 23.0, 20.0, 23.0],
            },
            WalRecord::AppendSequence {
                id: 1,
                values: (0..300).map(|i| i as f64 * 0.5).collect(),
            },
            WalRecord::Checkpoint { epoch: 2 },
        ]
    }

    fn into_pager(wal: Wal<MemPager>) -> MemPager {
        wal.pager
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let mut wal = Wal::create(MemPager::new(1024)).unwrap();
        for r in &records() {
            wal.append_commit(r).unwrap();
        }
        assert_eq!(wal.committed_records(), 5);
        assert_eq!(wal.appends_logged(), 2);
        let (wal2, replayed, report) = Wal::open_recovering(into_pager(wal)).expect("reopen");
        assert_eq!(replayed, records());
        assert_eq!(report.committed_records, 5);
        assert_eq!(wal2.committed_records(), 5);
    }

    #[test]
    fn staged_records_are_not_acknowledged() {
        let mut wal = Wal::create(MemPager::new(1024)).unwrap();
        wal.append_commit(&records()[0]).unwrap();
        // Staged but never committed: must not replay.
        wal.append(&records()[3]).unwrap();
        assert_eq!(wal.staged_records(), 1);
        let (_, replayed, report) = Wal::open_recovering(into_pager(wal)).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(!report.is_clean(), "staged tail is reported: {report}");
        assert!(report.uncommitted_tail_bytes > 0);
    }

    #[test]
    fn batch_commit_acknowledges_all_staged() {
        let mut wal = Wal::create(MemPager::new(1024)).unwrap();
        for r in &records() {
            wal.append(r).unwrap();
        }
        wal.commit().unwrap();
        let (_, replayed, _) = Wal::open_recovering(into_pager(wal)).unwrap();
        assert_eq!(replayed.len(), 5);
    }

    #[test]
    fn truncate_empties_the_log() {
        let mut wal = Wal::create(MemPager::new(1024)).unwrap();
        for r in &records() {
            wal.append_commit(r).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.committed_records(), 0);
        // New appends after the truncation replay alone.
        wal.append_commit(&records()[4]).unwrap();
        let (_, replayed, _) = Wal::open_recovering(into_pager(wal)).unwrap();
        assert_eq!(replayed, vec![records()[4].clone()]);
    }

    #[test]
    fn bit_flip_inside_committed_extent_is_typed_corruption() {
        let mut wal = Wal::create(MemPager::new(1024)).unwrap();
        for r in &records() {
            wal.append_commit(r).unwrap();
        }
        let mut pager = into_pager(wal);
        // Flip a byte in the first record (page 1, offset 8).
        let mut buf = vec![0u8; 1024];
        pager.read_page(1, &mut buf).unwrap();
        buf[8] ^= 0x40;
        pager.write_page(1, &buf).unwrap();
        let err = match Wal::open_recovering(pager) {
            Err(e) => e,
            Ok(_) => panic!("bit-flipped acknowledged record must not replay"),
        };
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn records_span_pages() {
        let mut wal = Wal::create(MemPager::new(1024)).unwrap();
        let long = WalRecord::AppendSequence {
            id: 9,
            values: (0..1000).map(|i| i as f64).collect(),
        };
        wal.append_commit(&long).unwrap();
        wal.append_commit(&records()[4]).unwrap();
        let (_, replayed, _) = Wal::open_recovering(into_pager(wal)).unwrap();
        assert_eq!(replayed, vec![long, records()[4].clone()]);
    }

    #[test]
    fn garbage_header_is_rejected() {
        let mut pager = MemPager::new(1024);
        pager.allocate().unwrap();
        assert!(matches!(
            Wal::open_recovering(pager),
            Err(StoreError::BadHeader(_))
        ));
    }

    #[test]
    fn wal_file_roundtrip_with_checksummed_stack() {
        let dir = std::env::temp_dir().join(format!("twwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.twl");
        {
            let mut wal = create_wal_file(&path, 1024).unwrap();
            for r in &records() {
                wal.append_commit(r).unwrap();
            }
        }
        let (_, replayed, report) = open_wal_file(&path, 1024).expect("reopen");
        assert_eq!(replayed, records());
        assert!(report.is_clean(), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_tail_loses_only_unacknowledged_work() {
        // Acknowledged records survive chopping the staged region; this is
        // the kill -9 shape the crashtest drives end to end.
        let dir = std::env::temp_dir().join(format!("twwal-chop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.twl");
        {
            let mut wal = create_wal_file(&path, 1024).unwrap();
            wal.append_commit(&records()[0]).unwrap();
            // Large staged-but-unacknowledged tail.
            wal.append(&WalRecord::AppendSequence {
                id: 1,
                values: vec![1.0; 600],
            })
            .unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 700).unwrap();
        drop(f);
        let (_, replayed, _) = open_wal_file(&path, 1024).expect("recovering open");
        assert_eq!(replayed, vec![records()[0].clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
