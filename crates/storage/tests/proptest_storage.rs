//! Property tests of the storage substrate: codec and store round-trips,
//! I/O accounting consistency, and buffer-pool equivalence to the raw pager.

use proptest::prelude::*;

use tw_storage::{
    decode_record, encode_record_to_bytes, BufferPool, MemPager, Pager, SequenceStore,
};

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Codec: encode/decode is the identity for any finite payload.
    #[test]
    fn codec_roundtrip(id in any::<u64>(), values in values_strategy()) {
        let mut buf = encode_record_to_bytes(id, &values);
        let rec = decode_record(&mut buf).expect("decode");
        prop_assert_eq!(rec.id, id);
        prop_assert_eq!(rec.values, values);
    }

    /// Codec: decoding any truncation of a valid record fails cleanly rather
    /// than panicking or producing garbage.
    #[test]
    fn codec_truncations_fail_cleanly(
        values in prop::collection::vec(-100.0f64..100.0, 1..50),
        cut in 0usize..16,
    ) {
        let bytes = encode_record_to_bytes(1, &values);
        let keep = bytes.len().saturating_sub(cut + 1);
        let mut sliced = bytes.slice(0..keep);
        prop_assert!(decode_record(&mut sliced).is_err());
    }

    /// Store: append then read back arbitrary batches, in order and by id.
    #[test]
    fn store_roundtrip(batches in prop::collection::vec(values_strategy(), 1..40)) {
        let mut store = SequenceStore::in_memory();
        for (i, values) in batches.iter().enumerate() {
            let id = store.append(values).expect("append");
            prop_assert_eq!(id, i as u64);
        }
        prop_assert_eq!(store.len(), batches.len());
        for (i, values) in batches.iter().enumerate() {
            prop_assert_eq!(&store.get(i as u64).expect("get"), values);
            prop_assert_eq!(store.sequence_len(i as u64).expect("len"), values.len());
        }
        let scan = store.scan().expect("scan");
        for ((id, values), expect) in scan.iter().zip(&batches) {
            prop_assert_eq!(&values, &expect);
            prop_assert!(*id < batches.len() as u64);
        }
    }

    /// Store: the accounted random reads for a `get` always equal the page
    /// span the directory predicts.
    #[test]
    fn io_accounting_matches_prediction(batches in prop::collection::vec(values_strategy(), 1..20)) {
        let mut store = SequenceStore::in_memory();
        for values in &batches {
            store.append(values).expect("append");
        }
        store.take_io();
        for i in 0..batches.len() as u64 {
            let predicted = store.sequence_pages(i).expect("pages");
            store.get(i).expect("get");
            let io = store.take_io();
            prop_assert_eq!(io.random_page_reads, predicted, "sequence {}", i);
            prop_assert_eq!(io.sequential_pages_scanned, 0);
        }
    }

    /// Buffer pool: reads through any pool capacity return exactly what the
    /// raw pager holds.
    #[test]
    fn pool_transparent_for_any_capacity(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 64..=64), 1..12),
        capacity in 1usize..8,
        accesses in prop::collection::vec(0usize..12, 1..40),
    ) {
        let mut pager = MemPager::new(64);
        for page in &pages {
            let n = pager.allocate().expect("alloc");
            pager.write_page(n, page).expect("write");
        }
        let pool = BufferPool::new(pager, capacity);
        let mut buf = vec![0u8; 64];
        for &a in &accesses {
            let page = a % pages.len();
            pool.read(page as u64, &mut buf).expect("read");
            prop_assert_eq!(&buf, &pages[page]);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.hits + stats.misses, accesses.len() as u64);
    }

    /// Store persists through flush + reopen on a shared pager image.
    #[test]
    fn store_reopen_equivalence(batches in prop::collection::vec(values_strategy(), 1..15)) {
        // Build on a file-backed store so reopen exercises the real path.
        let dir = std::env::temp_dir().join(format!("twprop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("s{}.pages", rand_suffix(&batches)));
        {
            let pager = tw_storage::FilePager::create(&path, 1024).expect("create");
            let mut store = SequenceStore::create(pager, 8).expect("store");
            for values in &batches {
                store.append(values).expect("append");
            }
            store.flush().expect("flush");
        }
        let pager = tw_storage::FilePager::open(&path, 1024).expect("open");
        let store = SequenceStore::open(pager, 8).expect("reopen");
        prop_assert_eq!(store.len(), batches.len());
        for (i, values) in batches.iter().enumerate() {
            prop_assert_eq!(&store.get(i as u64).expect("get"), values);
        }
        std::fs::remove_file(&path).ok();
    }
}

/// A content-derived suffix so parallel proptest cases don't collide on one
/// file name.
fn rand_suffix(batches: &[Vec<f64>]) -> u64 {
    let mut h = 1469598103934665603u64;
    for b in batches {
        h ^= b.len() as u64;
        h = h.wrapping_mul(1099511628211);
        if let Some(v) = b.first() {
            h ^= v.to_bits();
            h = h.wrapping_mul(1099511628211);
        }
    }
    h
}
