//! Categorization of numeric sequences into symbol strings.
//!
//! ST-Filter (Park et al.) converts each numeric sequence into a string over a
//! small alphabet of *categories* before inserting it into the suffix tree.
//! The paper's experiments use 100 categories produced by the
//! equal-length-interval method (§5.1); an equal-frequency variant is
//! provided for the category-count ablation.

use crate::ukkonen::Symbol;

/// How category boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoryMethod {
    /// Split `[min, max]` into equal-width intervals (the paper's method).
    EqualWidth,
    /// Choose boundaries at value quantiles so categories hold roughly equal
    /// numbers of elements.
    EqualFrequency,
}

/// A categorizer: a partition of the value domain into `k` intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorizer {
    /// Interior boundaries, ascending; category `c` covers
    /// `[bound(c-1), bound(c))` with the outer categories unbounded.
    boundaries: Vec<f64>,
    /// Representative [lo, hi] range per category used by the filter's
    /// lower-bound distance (derived from observed data extremes).
    ranges: Vec<(f64, f64)>,
}

impl Categorizer {
    /// Fits a categorizer with `k` categories over every element of `data`.
    ///
    /// # Panics
    /// Panics when `k < 2` or `data` holds no elements.
    pub fn fit(data: &[Vec<f64>], k: usize, method: CategoryMethod) -> Self {
        assert!(k >= 2, "need at least two categories, got {k}");
        let mut values: Vec<f64> = data.iter().flatten().copied().collect();
        assert!(!values.is_empty(), "cannot fit categorizer on empty data");
        values.sort_by(f64::total_cmp);
        let lo = values[0];
        #[allow(clippy::expect_used)]
        // tw-allow(expect): guarded by the non-empty assert above
        let hi = *values.last().expect("non-empty");

        let boundaries: Vec<f64> = match method {
            CategoryMethod::EqualWidth => {
                let width = (hi - lo) / k as f64;
                (1..k).map(|i| lo + width * i as f64).collect()
            }
            CategoryMethod::EqualFrequency => (1..k)
                .map(|i| {
                    let rank = i * values.len() / k;
                    values[rank.min(values.len() - 1)]
                })
                .collect(),
        };

        // Category value ranges: the interval the category covers, clipped to
        // the observed extremes so the lower-bound distance stays tight.
        let mut ranges = Vec::with_capacity(k);
        for c in 0..k {
            let c_lo = if c == 0 { lo } else { boundaries[c - 1] };
            let c_hi = if c == k - 1 { hi } else { boundaries[c] };
            ranges.push((c_lo, c_hi));
        }
        Self { boundaries, ranges }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the categorizer is degenerate (it never is after `fit`).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The category of a value. Values outside the fitted domain clamp to the
    /// outermost categories.
    pub fn category(&self, v: f64) -> Symbol {
        // partition_point returns the count of boundaries <= v, i.e. the
        // category index.
        let c = self.boundaries.partition_point(|&b| b <= v);
        c as Symbol
    }

    /// The `[lo, hi]` value range of category `c`.
    pub fn range(&self, c: Symbol) -> (f64, f64) {
        self.ranges[c as usize]
    }

    /// Converts a numeric sequence into its category string.
    pub fn encode(&self, seq: &[f64]) -> Vec<Symbol> {
        seq.iter().map(|&v| self.category(v)).collect()
    }

    /// Lower bound on `|v - x|` over all `x` in category `c`'s range: zero
    /// when `v` falls inside the range, otherwise the gap to the nearest end.
    /// This is the per-element distance the ST-Filter DP uses; it never
    /// overestimates the true element distance, so the filter admits no false
    /// dismissal.
    pub fn min_dist(&self, v: f64, c: Symbol) -> f64 {
        let (lo, hi) = self.range(c);
        if v < lo {
            lo - v
        } else if v > hi {
            v - hi
        } else {
            0.0
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // Tests assert exact float round-trips and identities on purpose.
mod tests {
    use super::*;

    fn data() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
        ]
    }

    #[test]
    fn equal_width_boundaries() {
        let c = Categorizer::fit(&data(), 5, CategoryMethod::EqualWidth);
        assert_eq!(c.len(), 5);
        assert_eq!(c.category(0.0), 0);
        assert_eq!(c.category(1.9), 0);
        assert_eq!(c.category(2.0), 1);
        assert_eq!(c.category(10.0), 4);
        // Out-of-domain values clamp.
        assert_eq!(c.category(-100.0), 0);
        assert_eq!(c.category(100.0), 4);
    }

    #[test]
    fn ranges_tile_the_domain() {
        let c = Categorizer::fit(&data(), 4, CategoryMethod::EqualWidth);
        let mut prev_hi = None;
        for i in 0..c.len() {
            let (lo, hi) = c.range(i as Symbol);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p, "ranges must tile without gaps");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(c.range(0).0, 0.0);
        assert_eq!(c.range(3).1, 10.0);
    }

    #[test]
    fn encode_roundtrip_consistency() {
        let c = Categorizer::fit(&data(), 10, CategoryMethod::EqualWidth);
        let seq = vec![0.0, 5.5, 9.9];
        let symbols = c.encode(&seq);
        assert_eq!(symbols.len(), 3);
        for (&v, &s) in seq.iter().zip(&symbols) {
            let (lo, hi) = c.range(s);
            assert!(
                v >= lo && v <= hi,
                "value {v} outside range of category {s}"
            );
        }
    }

    #[test]
    fn min_dist_is_lower_bound_on_element_distance() {
        let c = Categorizer::fit(&data(), 5, CategoryMethod::EqualWidth);
        // For any value v and any element x with category(x) = c, the
        // categorized distance never exceeds |v - x|.
        let elems = [0.0, 1.3, 2.2, 4.9, 6.0, 7.7, 10.0];
        let queries = [-1.0, 0.5, 3.3, 5.0, 9.2, 12.0];
        for &x in &elems {
            let cx = c.category(x);
            for &v in &queries {
                assert!(
                    c.min_dist(v, cx) <= (v - x).abs() + 1e-12,
                    "v={v} x={x} cat={cx}"
                );
            }
        }
    }

    #[test]
    fn min_dist_zero_inside_range() {
        let c = Categorizer::fit(&data(), 5, CategoryMethod::EqualWidth);
        let (lo, hi) = c.range(2);
        assert_eq!(c.min_dist((lo + hi) / 2.0, 2), 0.0);
        assert_eq!(c.min_dist(lo, 2), 0.0);
        assert_eq!(c.min_dist(hi, 2), 0.0);
        assert!(c.min_dist(hi + 1.0, 2) > 0.99);
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Skewed data: many small values, few large.
        let skew = vec![
            (0..90).map(|i| i as f64 * 0.01).collect::<Vec<_>>(),
            vec![50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
        ];
        let eq_w = Categorizer::fit(&skew, 4, CategoryMethod::EqualWidth);
        let eq_f = Categorizer::fit(&skew, 4, CategoryMethod::EqualFrequency);
        let count_in = |c: &Categorizer, cat: Symbol| {
            skew.iter()
                .flatten()
                .filter(|&&v| c.category(v) == cat)
                .count()
        };
        // Equal-width puts nearly everything in category 0; equal-frequency
        // spreads the bulk across categories.
        assert!(count_in(&eq_w, 0) >= 90);
        assert!(count_in(&eq_f, 0) < 90);
    }

    #[test]
    #[should_panic(expected = "at least two categories")]
    fn single_category_rejected() {
        let _ = Categorizer::fit(&data(), 1, CategoryMethod::EqualWidth);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_rejected() {
        let _ = Categorizer::fit(&[], 4, CategoryMethod::EqualWidth);
    }

    #[test]
    fn constant_data_degenerates_gracefully() {
        let flat = vec![vec![5.0; 10]];
        let c = Categorizer::fit(&flat, 4, CategoryMethod::EqualWidth);
        assert_eq!(c.category(5.0), 3); // all boundaries equal 5.0; <= pushes up
        assert_eq!(c.min_dist(5.0, c.category(5.0)), 0.0);
    }
}
