//! # tw-suffix — generalized suffix tree + ST-Filter for the reproduction
//!
//! The substrate behind the **ST-Filter** baseline (Park et al.) that the
//! paper's experiments compare TW-Sim-Search against:
//!
//! * [`SuffixTree`] — a generalized suffix tree over symbol strings built
//!   with Ukkonen's online algorithm (unique per-string terminators, leaf
//!   suffix annotations, occurrence queries);
//! * [`Categorizer`] — the equal-width (paper §5.1, 100 categories) and
//!   equal-frequency categorization of numeric sequences into symbol strings;
//! * [`StFilter`] — the time-warping filter traversal: a branch-and-bound
//!   DP over tree paths using category-range lower-bound distances, for both
//!   whole matching (the paper's experiments) and subsequence matching
//!   (ST-Filter's original target).
//!
//! ## Example
//!
//! ```
//! use tw_suffix::{CategoryMethod, StFilter};
//!
//! let db = vec![
//!     vec![20.0, 21.0, 21.0, 20.0, 23.0],
//!     vec![5.0, 6.0, 7.0],
//! ];
//! let filter = StFilter::build(&db, 16, CategoryMethod::EqualWidth);
//! let candidates = filter.whole_match_candidates(&[20.0, 21.0, 20.0, 23.0], 1.0);
//! assert!(candidates.ids.contains(&0));
//! assert!(!candidates.ids.contains(&1));
//! ```

#![forbid(unsafe_code)]

mod categorize;
mod persist;
mod stfilter;
mod ukkonen;

pub use categorize::{Categorizer, CategoryMethod};
pub use persist::DecodeError;
pub use stfilter::{StFilter, SubsequenceCandidates, TraversalStats, WholeMatchCandidates};
pub use ukkonen::{NodeIdx, SuffixRef, SuffixTree, Symbol};
