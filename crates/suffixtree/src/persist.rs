//! Suffix-tree serialization.
//!
//! §3.4's critique of ST-Filter centres on the size of the suffix tree —
//! which only matters because the tree is a persistent, disk-resident
//! structure. This module gives the generalized suffix tree an explicit
//! little-endian on-disk format so the size claims can be measured in bytes,
//! and so the CLI/examples can reload a built filter.
//!
//! ```text
//! file   := header strings text nodes
//! header := magic:u32 sentinel:u32 string_count:u32 text_len:u32 node_count:u32
//! strings:= (offset:u32 len:u32)*
//! text   := symbol:u32 *
//! node   := start:u32 end:u32 suffix:u32 child_count:u32 (symbol:u32 child:u32)*
//! ```
//!
//! `suffix == u32::MAX` encodes "not a leaf".

use std::collections::HashMap;

use crate::ukkonen::{StNode, SuffixTree, Symbol};

/// Magic marking a serialized suffix tree ("TWS2").
const MAGIC: u32 = 0x5457_5332;
const NO_SUFFIX: u32 = u32::MAX;

/// Errors produced while decoding a serialized suffix tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic number.
    BadMagic(u32),
    /// Buffer ended early.
    Truncated,
    /// A structural field held an impossible value.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad suffix-tree magic 0x{m:08x}"),
            DecodeError::Truncated => write!(f, "suffix-tree buffer truncated"),
            DecodeError::Corrupt(w) => write!(f, "corrupt suffix-tree field: {w}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    #[allow(clippy::expect_used)]
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or(DecodeError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        // tw-allow(expect): the range above yields exactly 4 bytes
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

impl SuffixTree {
    /// Serializes the tree (including the concatenated text) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            20 + 8 * self.string_count() + 4 * self.text_len() + 16 * self.node_count(),
        );
        let put = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        put(&mut out, MAGIC);
        put(&mut out, self.sentinel_base());
        put(&mut out, self.string_count() as u32);
        put(&mut out, self.text_len() as u32);
        put(&mut out, self.node_count() as u32);
        for i in 0..self.string_count() {
            put(&mut out, self.string_offset(i) as u32);
            put(&mut out, self.string_len(i) as u32);
        }
        for &sym in self.text() {
            put(&mut out, sym);
        }
        for idx in 0..self.node_count() {
            let node = self.node(idx);
            put(&mut out, node.start as u32);
            put(&mut out, node.end as u32);
            put(&mut out, node.suffix_start.map_or(NO_SUFFIX, |s| s as u32));
            let mut children: Vec<(Symbol, usize)> =
                node.children.iter().map(|(&s, &c)| (s, c)).collect();
            children.sort_unstable_by_key(|&(s, _)| s);
            put(&mut out, children.len() as u32);
            for (sym, child) in children {
                put(&mut out, sym);
                put(&mut out, child as u32);
            }
        }
        out
    }

    /// Reconstructs a tree from [`SuffixTree::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let sentinel_base = r.u32()?;
        let string_count = r.u32()? as usize;
        let text_len = r.u32()? as usize;
        let node_count = r.u32()? as usize;
        if node_count == 0 {
            return Err(DecodeError::Corrupt("zero nodes"));
        }

        let mut string_offsets = Vec::with_capacity(string_count);
        let mut string_lens = Vec::with_capacity(string_count);
        for _ in 0..string_count {
            string_offsets.push(r.u32()? as usize);
            string_lens.push(r.u32()? as usize);
        }
        let mut text = Vec::with_capacity(text_len);
        for _ in 0..text_len {
            text.push(r.u32()?);
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let start = r.u32()? as usize;
            let end = r.u32()? as usize;
            if start > end || end > text_len {
                return Err(DecodeError::Corrupt("edge label out of bounds"));
            }
            let suffix = r.u32()?;
            let child_count = r.u32()? as usize;
            let mut children = HashMap::with_capacity(child_count);
            for _ in 0..child_count {
                let sym = r.u32()?;
                let child = r.u32()? as usize;
                if child >= node_count {
                    return Err(DecodeError::Corrupt("child index out of bounds"));
                }
                children.insert(sym, child);
            }
            nodes.push(StNode {
                start,
                end,
                link: 0, // suffix links are construction-time only
                children,
                suffix_start: (suffix != NO_SUFFIX).then_some(suffix as usize),
            });
        }
        Ok(SuffixTree::from_parts(
            text,
            nodes,
            string_offsets,
            string_lens,
            sentinel_base,
        ))
    }

    /// Serialized size in bytes — the number §3.4's size comparison is
    /// about.
    pub fn serialized_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Symbol = 1 << 16;

    fn sample_strings() -> Vec<Vec<Symbol>> {
        vec![vec![1, 2, 3, 2, 3, 2], vec![2, 1, 2, 2], vec![0, 0, 0, 1]]
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let strings = sample_strings();
        let tree = SuffixTree::build(&strings, BASE);
        let back = SuffixTree::from_bytes(&tree.to_bytes()).expect("decode");
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.string_count(), tree.string_count());
        for pattern in [&[2, 3][..], &[1, 2], &[0, 0], &[3, 3], &[2, 3, 2]] {
            assert_eq!(
                back.occurrences(pattern),
                tree.occurrences(pattern),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn roundtrip_single_string() {
        let tree = SuffixTree::build(&[vec![5, 5, 5]], BASE);
        let back = SuffixTree::from_bytes(&tree.to_bytes()).expect("decode");
        assert_eq!(back.occurrences(&[5, 5]), tree.occurrences(&[5, 5]));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = SuffixTree::build(&sample_strings(), BASE).to_bytes();
        raw[0] ^= 0xff;
        assert!(matches!(
            SuffixTree::from_bytes(&raw),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let raw = SuffixTree::build(&sample_strings(), BASE).to_bytes();
        for cut in [4usize, 16, raw.len() / 2, raw.len() - 1] {
            assert!(
                SuffixTree::from_bytes(&raw[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn serialized_size_tracks_node_count() {
        let small = SuffixTree::build(&[vec![1, 2]], BASE);
        let strings: Vec<Vec<Symbol>> = (0..20)
            .map(|i| (0..50).map(|j| ((i * j) % 7) as Symbol).collect())
            .collect();
        let big = SuffixTree::build(&strings, BASE);
        assert!(big.serialized_bytes() > 20 * small.serialized_bytes());
    }
}
