//! The ST-Filter traversal (Park et al.), adapted for whole matching as the
//! paper's Experiment baselines require.
//!
//! The filter walks the suffix tree depth-first, maintaining one column of a
//! time-warping dynamic-programming table per path symbol. The per-element
//! distance is the *category-range* lower bound
//! ([`Categorizer::min_dist`]), so the DP value along any path lower-bounds
//! the true time-warping distance to any sequence whose categorized string
//! follows that path — branches whose entire column exceeds the tolerance
//! can be pruned without false dismissal.
//!
//! Whole matching accepts at leaves representing a *complete* string (suffix
//! offset 0); subsequence filtering accepts at any path position whose final
//! DP cell is within tolerance.

use crate::categorize::{Categorizer, CategoryMethod};
use crate::ukkonen::{NodeIdx, SuffixTree, Symbol};

/// Default sentinel base: categories use symbols `0..k`, terminators start
/// here. Supports up to `u32::MAX - 2^16` strings.
const SENTINEL_BASE: Symbol = 1 << 16;

/// Traversal statistics for the cost model and the candidate-ratio figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Suffix-tree nodes expanded.
    pub nodes_visited: u64,
    /// DP cells computed during the traversal.
    pub dp_cells: u64,
}

/// Whole-matching filter output: candidate sequence ids.
#[derive(Debug, Clone)]
pub struct WholeMatchCandidates {
    pub ids: Vec<usize>,
    pub stats: TraversalStats,
}

/// Subsequence filter output: candidate `(sequence, offset, length)` windows.
#[derive(Debug, Clone)]
pub struct SubsequenceCandidates {
    pub windows: Vec<(usize, usize, usize)>,
    pub stats: TraversalStats,
}

/// A suffix-tree-based similarity filter over categorized sequences.
#[derive(Debug, Clone)]
pub struct StFilter {
    tree: SuffixTree,
    categorizer: Categorizer,
}

impl StFilter {
    /// Builds the filter: fit a categorizer, encode every sequence, build the
    /// generalized suffix tree. The paper's experiments use `k = 100`
    /// equal-width categories (§5.1).
    pub fn build(data: &[Vec<f64>], categories: usize, method: CategoryMethod) -> Self {
        let categorizer = Categorizer::fit(data, categories, method);
        assert!(
            categories < SENTINEL_BASE as usize,
            "category count {categories} exceeds symbol space"
        );
        let strings: Vec<Vec<Symbol>> = data.iter().map(|s| categorizer.encode(s)).collect();
        let tree = SuffixTree::build(&strings, SENTINEL_BASE);
        Self { tree, categorizer }
    }

    /// The underlying suffix tree (size inspection, diagnostics).
    pub fn tree(&self) -> &SuffixTree {
        &self.tree
    }

    /// The fitted categorizer.
    pub fn categorizer(&self) -> &Categorizer {
        &self.categorizer
    }

    /// Whole-matching candidates: sequences whose categorized string can be
    /// warped onto the query with lower-bound distance within `epsilon`.
    ///
    /// Sound (no false dismissal): if `D_tw(S, Q) <= epsilon` then the
    /// categorized DP along S's path is `<= epsilon`, because every element of
    /// S lies inside its category's range.
    pub fn whole_match_candidates(&self, query: &[f64], epsilon: f64) -> WholeMatchCandidates {
        let mut stats = TraversalStats::default();
        let mut ids = Vec::new();
        if query.is_empty() {
            return WholeMatchCandidates { ids, stats };
        }
        let m = query.len();
        // col[i] = DP value for query prefix of length i against the current
        // path; col[0] is the empty-query row (infinite once the path is
        // non-empty, zero at the root).
        let mut col = vec![f64::INFINITY; m + 1];
        col[0] = 0.0;
        self.dfs_whole(0, &col, query, epsilon, &mut ids, &mut stats);
        ids.sort_unstable();
        ids.dedup();
        WholeMatchCandidates { ids, stats }
    }

    fn dfs_whole(
        &self,
        node: NodeIdx,
        col: &[f64],
        query: &[f64],
        epsilon: f64,
        out: &mut Vec<usize>,
        stats: &mut TraversalStats,
    ) {
        stats.nodes_visited += 1;
        for (first_sym, child) in self.tree.children(node) {
            let label = self.tree.edge_label(child);
            debug_assert_eq!(label.first().copied(), Some(first_sym));
            let mut cur = col.to_vec();
            let mut pruned = false;
            let mut accepted_leaf = false;
            for &sym in label {
                if self.tree.is_terminator(sym) {
                    // End of a string. Terminators are unique per string, so
                    // only leaf edges contain them. Accept if this leaf is a
                    // full string (suffix offset 0) and the DP is within the
                    // tolerance.
                    if cur[query.len()] <= epsilon {
                        #[allow(clippy::expect_used)]
                        let suf = self
                            .tree
                            .leaf_suffix(child)
                            // tw-allow(expect): Ukkonen invariant — skipping instead would false-dismiss
                            .expect("terminator only occurs on leaf edges");
                        if suf.offset == 0 {
                            out.push(suf.string_id);
                        }
                    }
                    accepted_leaf = true;
                    break;
                }
                advance_column(&mut cur, query, |q| self.categorizer.min_dist(q, sym));
                stats.dp_cells += query.len() as u64;
                if column_min(&cur) > epsilon {
                    pruned = true;
                    break;
                }
            }
            if !pruned && !accepted_leaf {
                self.dfs_whole(child, &cur, query, epsilon, out, stats);
            }
        }
    }

    /// Subsequence candidates: windows `(sequence, offset, length)` whose
    /// categorized prefix path warps onto the whole query within `epsilon`.
    /// Windows are reported at the shallowest qualifying path length per
    /// occurrence; the caller verifies with the exact distance.
    pub fn subsequence_candidates(&self, query: &[f64], epsilon: f64) -> SubsequenceCandidates {
        let mut stats = TraversalStats::default();
        let mut windows = Vec::new();
        if query.is_empty() {
            return SubsequenceCandidates { windows, stats };
        }
        let m = query.len();
        let mut col = vec![f64::INFINITY; m + 1];
        col[0] = 0.0;
        self.dfs_subseq(0, &col, 0, query, epsilon, &mut windows, &mut stats);
        windows.sort_unstable();
        windows.dedup();
        SubsequenceCandidates { windows, stats }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_subseq(
        &self,
        node: NodeIdx,
        col: &[f64],
        depth: usize,
        query: &[f64],
        epsilon: f64,
        out: &mut Vec<(usize, usize, usize)>,
        stats: &mut TraversalStats,
    ) {
        stats.nodes_visited += 1;
        for (_, child) in self.tree.children(node) {
            let label = self.tree.edge_label(child);
            let mut cur = col.to_vec();
            let mut pruned = false;
            let mut path_len = depth;
            for &sym in label {
                if self.tree.is_terminator(sym) {
                    pruned = true; // path cannot extend past a string end
                    break;
                }
                advance_column(&mut cur, query, |q| self.categorizer.min_dist(q, sym));
                stats.dp_cells += query.len() as u64;
                path_len += 1;
                if cur[query.len()] <= epsilon {
                    // Every occurrence of this path is a candidate window.
                    for occ in self.occurrences_below(child) {
                        out.push((occ.0, occ.1, path_len));
                    }
                }
                if column_min(&cur) > epsilon {
                    pruned = true;
                    break;
                }
            }
            if !pruned {
                self.dfs_subseq(child, &cur, path_len, query, epsilon, out, stats);
            }
        }
    }

    /// All `(string, offset)` suffix positions at or below `node`.
    fn occurrences_below(&self, node: NodeIdx) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(idx) = stack.pop() {
            let children = self.tree.children(idx);
            if children.is_empty() {
                if let Some(suf) = self.tree.leaf_suffix(idx) {
                    out.push((suf.string_id, suf.offset));
                }
            } else {
                stack.extend(children.into_iter().map(|(_, c)| c));
            }
        }
        out
    }
}

/// Advances a time-warping DP column by one path symbol, in place.
///
/// Recurrence (L∞ base, Definition 2 of the paper):
/// `D(i, j) = max(d_i, min(D(i-1, j), D(i, j-1), D(i-1, j-1)))`
/// where `d_i` is the per-element distance of query element `i` to the
/// current symbol.
fn advance_column(col: &mut [f64], query: &[f64], dist: impl Fn(f64) -> f64) {
    let m = query.len();
    // prev_diag tracks D(i-1, j-1) from the pre-update column.
    let mut prev_diag = col[0];
    // Row 0 against a non-empty path is infinite (empty query, Definition 2).
    col[0] = f64::INFINITY;
    for i in 1..=m {
        let d = dist(query[i - 1]);
        let best_prev = col[i].min(col[i - 1]).min(prev_diag);
        prev_diag = col[i];
        col[i] = d.max(best_prev);
    }
}

fn column_min(col: &[f64]) -> f64 {
    col.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference time-warping distance with L∞ base (Definition 2), full DP.
    fn dtw_linf(s: &[f64], q: &[f64]) -> f64 {
        let (n, m) = (s.len(), q.len());
        if n == 0 || m == 0 {
            return if n == m { 0.0 } else { f64::INFINITY };
        }
        let mut dp = vec![vec![f64::INFINITY; m + 1]; n + 1];
        dp[0][0] = 0.0;
        for i in 1..=n {
            for j in 1..=m {
                let d = (s[i - 1] - q[j - 1]).abs();
                let best = dp[i - 1][j].min(dp[i][j - 1]).min(dp[i - 1][j - 1]);
                dp[i][j] = d.max(best);
            }
        }
        dp[n][m]
    }

    fn sample_db() -> Vec<Vec<f64>> {
        vec![
            vec![20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0, 23.0],
            vec![20.0, 20.0, 21.0, 20.0, 23.0],
            vec![5.0, 6.0, 7.0, 8.0],
            vec![20.0, 25.0, 20.0, 25.0],
            vec![22.9, 23.0, 22.8],
        ]
    }

    #[test]
    fn whole_match_no_false_dismissal() {
        let db = sample_db();
        let filter = StFilter::build(&db, 10, CategoryMethod::EqualWidth);
        let query = vec![20.0, 21.0, 20.0, 23.0];
        for eps in [0.0, 0.5, 1.0, 2.0, 5.0] {
            let cands = filter.whole_match_candidates(&query, eps);
            for (id, s) in db.iter().enumerate() {
                if dtw_linf(s, &query) <= eps {
                    assert!(
                        cands.ids.contains(&id),
                        "eps={eps}: sequence {id} dismissed (dtw={})",
                        dtw_linf(s, &query)
                    );
                }
            }
        }
    }

    #[test]
    fn whole_match_filters_distant_sequences() {
        let db = sample_db();
        // Many categories -> tight ranges -> good filtering.
        let filter = StFilter::build(&db, 50, CategoryMethod::EqualWidth);
        let query = vec![20.0, 21.0, 20.0, 23.0];
        let cands = filter.whole_match_candidates(&query, 0.5);
        // Sequence 2 (values 5..8) is far from the query: must be pruned.
        assert!(!cands.ids.contains(&2));
        // Sequences 0 and 1 are warpable onto the query exactly.
        assert!(cands.ids.contains(&0));
        assert!(cands.ids.contains(&1));
    }

    #[test]
    fn more_categories_filter_no_worse() {
        let db = sample_db();
        let query = vec![20.0, 21.0, 20.0, 23.0];
        let coarse = StFilter::build(&db, 4, CategoryMethod::EqualWidth);
        let fine = StFilter::build(&db, 64, CategoryMethod::EqualWidth);
        let eps = 1.0;
        let c_coarse = coarse.whole_match_candidates(&query, eps).ids;
        let c_fine = fine.whole_match_candidates(&query, eps).ids;
        // 4 divides 64, so fine category ranges nest inside coarse ones:
        // the fine lower bound dominates and its candidate set is a subset.
        for id in &c_fine {
            assert!(
                c_coarse.contains(id),
                "fine candidate {id} not in coarse set"
            );
        }
        assert!(c_fine.len() <= c_coarse.len());
    }

    #[test]
    fn zero_tolerance_exact_category_path() {
        let db = sample_db();
        let filter = StFilter::build(&db, 20, CategoryMethod::EqualWidth);
        // Query equal to db[1]: must at least return 1.
        let cands = filter.whole_match_candidates(&db[1].clone(), 0.0);
        assert!(cands.ids.contains(&1));
    }

    #[test]
    fn empty_query_returns_nothing() {
        let db = sample_db();
        let filter = StFilter::build(&db, 10, CategoryMethod::EqualWidth);
        let cands = filter.whole_match_candidates(&[], 10.0);
        assert!(cands.ids.is_empty());
    }

    #[test]
    fn traversal_stats_populated() {
        let db = sample_db();
        let filter = StFilter::build(&db, 10, CategoryMethod::EqualWidth);
        let cands = filter.whole_match_candidates(&[20.0, 21.0], 1.0);
        assert!(cands.stats.nodes_visited > 0);
        assert!(cands.stats.dp_cells > 0);
    }

    #[test]
    fn tighter_epsilon_prunes_more() {
        let db: Vec<Vec<f64>> = (0..30)
            .map(|i| (0..20).map(|j| ((i * j) % 17) as f64).collect())
            .collect();
        let filter = StFilter::build(&db, 30, CategoryMethod::EqualWidth);
        let query: Vec<f64> = (0..20).map(|j| (j % 17) as f64).collect();
        let tight = filter.whole_match_candidates(&query, 0.5);
        let loose = filter.whole_match_candidates(&query, 8.0);
        assert!(tight.ids.len() <= loose.ids.len());
        assert!(tight.stats.dp_cells <= loose.stats.dp_cells);
    }

    #[test]
    fn subsequence_candidates_find_embedded_pattern() {
        // db[0] embeds the pattern 7,8,9 at offset 3.
        let db = vec![
            vec![1.0, 1.0, 1.0, 7.0, 8.0, 9.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0, 2.0],
        ];
        let filter = StFilter::build(&db, 12, CategoryMethod::EqualWidth);
        let res = filter.subsequence_candidates(&[7.0, 8.0, 9.0], 1.0);
        assert!(
            res.windows.iter().any(|&(s, off, _)| s == 0 && off == 3),
            "windows: {:?}",
            res.windows
        );
        // Nothing in string 1 resembles the pattern.
        assert!(res.windows.iter().all(|&(s, _, _)| s != 1));
    }

    #[test]
    fn subsequence_no_false_dismissal_on_windows() {
        let db = vec![vec![3.0, 5.0, 5.0, 6.0, 9.0, 2.0, 5.1, 6.2]];
        let filter = StFilter::build(&db, 16, CategoryMethod::EqualWidth);
        let query = vec![5.0, 6.0];
        let eps = 0.5;
        let res = filter.subsequence_candidates(&query, eps);
        // Brute force: check all windows with exact DTW; each within eps must
        // be covered by some candidate window at the same start.
        let s = &db[0];
        for start in 0..s.len() {
            for end in (start + 1)..=s.len() {
                if dtw_linf(&s[start..end], &query) <= eps {
                    assert!(
                        res.windows
                            .iter()
                            .any(|&(_, off, len)| off == start && len <= end - start),
                        "window [{start},{end}) dismissed; candidates {:?}",
                        res.windows
                    );
                }
            }
        }
    }
}
