//! Generalized suffix tree built with Ukkonen's online algorithm.
//!
//! The tree indexes several symbol strings at once by concatenating them with
//! per-string unique terminator symbols, which guarantees every suffix ends
//! at its own leaf. Leaves carry the `(string id, offset)` of the suffix they
//! represent, which is what the ST-Filter traversal needs to recover
//! candidate sequences.

use std::collections::HashMap;

/// Symbols are small unsigned integers (category ids). Terminators are
/// allocated above [`SuffixTree::sentinel_base`].
pub type Symbol = u32;

/// Index of a node in the tree arena. The root is node 0.
pub type NodeIdx = usize;

#[derive(Debug, Clone)]
pub(crate) struct StNode {
    /// Label of the edge *into* this node: `text[start..end]`.
    pub start: usize,
    pub end: usize,
    pub link: NodeIdx,
    pub children: HashMap<Symbol, NodeIdx>,
    /// For leaves: the global position where the represented suffix starts.
    pub suffix_start: Option<usize>,
}

/// Where a suffix lives: which input string, at which offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SuffixRef {
    pub string_id: usize,
    pub offset: usize,
}

/// A generalized suffix tree over `Vec<Symbol>` strings.
#[derive(Debug, Clone)]
pub struct SuffixTree {
    text: Vec<Symbol>,
    nodes: Vec<StNode>,
    /// Global start offset of each input string in `text`.
    string_offsets: Vec<usize>,
    /// Length (excluding terminator) of each input string.
    string_lens: Vec<usize>,
    sentinel_base: Symbol,
}

impl SuffixTree {
    /// Builds a generalized suffix tree over `strings`.
    ///
    /// `sentinel_base` must exceed every symbol used in the strings; string
    /// `i` is terminated by the unique symbol `sentinel_base + i`.
    ///
    /// # Panics
    /// Panics if any symbol is `>= sentinel_base`.
    pub fn build(strings: &[Vec<Symbol>], sentinel_base: Symbol) -> Self {
        let total: usize = strings.iter().map(|s| s.len() + 1).sum();
        let mut text = Vec::with_capacity(total);
        let mut string_offsets = Vec::with_capacity(strings.len());
        let mut string_lens = Vec::with_capacity(strings.len());
        for (i, s) in strings.iter().enumerate() {
            string_offsets.push(text.len());
            string_lens.push(s.len());
            for &sym in s {
                assert!(
                    sym < sentinel_base,
                    "symbol {sym} collides with sentinel space (base {sentinel_base})"
                );
                text.push(sym);
            }
            #[allow(clippy::expect_used)]
            // tw-allow(expect): documented API contract — u32 symbol space bounds the string count
            let per_string = u32::try_from(i).expect("too many strings");
            #[allow(clippy::expect_used)]
            let terminator = sentinel_base
                .checked_add(per_string)
                // tw-allow(expect): documented API contract — sentinel space sized by caller
                .expect("sentinel space exhausted");
            text.push(terminator);
        }

        let mut tree = Self {
            text,
            nodes: vec![StNode {
                start: 0,
                end: 0,
                link: 0,
                children: HashMap::new(),
                suffix_start: None,
            }],
            string_offsets,
            string_lens,
            sentinel_base,
        };
        tree.ukkonen();
        tree.assign_suffix_starts();
        tree
    }

    /// The base of the terminator symbol space.
    pub fn sentinel_base(&self) -> Symbol {
        self.sentinel_base
    }

    /// Number of nodes including the root. The paper's §3.4 discussion of
    /// ST-Filter's whole-matching weakness is about this number growing.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed strings.
    pub fn string_count(&self) -> usize {
        self.string_offsets.len()
    }

    /// Length of input string `i` (excluding its terminator).
    pub fn string_len(&self, i: usize) -> usize {
        self.string_lens[i]
    }

    /// Global start offset of input string `i` in the concatenated text.
    pub fn string_offset(&self, i: usize) -> usize {
        self.string_offsets[i]
    }

    /// The concatenated text (terminators included).
    pub(crate) fn text(&self) -> &[Symbol] {
        &self.text
    }

    /// A node by arena index (crate-internal, used by persistence).
    pub(crate) fn node(&self, idx: NodeIdx) -> &StNode {
        &self.nodes[idx]
    }

    /// Reassembles a tree from decoded parts (crate-internal, used by
    /// persistence).
    pub(crate) fn from_parts(
        text: Vec<Symbol>,
        nodes: Vec<StNode>,
        string_offsets: Vec<usize>,
        string_lens: Vec<usize>,
        sentinel_base: Symbol,
    ) -> Self {
        Self {
            text,
            nodes,
            string_offsets,
            string_lens,
            sentinel_base,
        }
    }

    /// Total length of the concatenated text, terminators included.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    fn new_node(&mut self, start: usize, end: usize) -> NodeIdx {
        self.nodes.push(StNode {
            start,
            end,
            link: 0,
            children: HashMap::new(),
            suffix_start: None,
        });
        self.nodes.len() - 1
    }

    /// Classic Ukkonen construction with an active point and suffix links.
    fn ukkonen(&mut self) {
        const LEAF: usize = usize::MAX;
        let n = self.text.len();
        let (mut active_node, mut active_edge, mut active_len) = (0usize, 0usize, 0usize);
        let mut remainder = 0usize;

        for pos in 0..n {
            let mut need_link: Option<NodeIdx> = None;
            remainder += 1;
            while remainder > 0 {
                if active_len == 0 {
                    active_edge = pos;
                }
                let edge_sym = self.text[active_edge];
                match self.nodes[active_node].children.get(&edge_sym).copied() {
                    None => {
                        let leaf = self.new_node(pos, LEAF);
                        self.nodes[active_node].children.insert(edge_sym, leaf);
                        if let Some(from) = need_link.take() {
                            self.nodes[from].link = active_node;
                        }
                        need_link = Some(active_node);
                    }
                    Some(next) => {
                        let edge_end = self.nodes[next].end.min(n);
                        let edge_len = edge_end - self.nodes[next].start;
                        if active_len >= edge_len {
                            // Walk down (canonicalize).
                            active_edge += edge_len;
                            active_len -= edge_len;
                            active_node = next;
                            continue;
                        }
                        if self.text[self.nodes[next].start + active_len] == self.text[pos] {
                            // Current symbol already on the edge: rule 3.
                            active_len += 1;
                            if let Some(from) = need_link.take() {
                                self.nodes[from].link = active_node;
                            }
                            break;
                        }
                        // Split the edge: rule 2.
                        let split_start = self.nodes[next].start;
                        let split = self.new_node(split_start, split_start + active_len);
                        self.nodes[active_node].children.insert(edge_sym, split);
                        let leaf = self.new_node(pos, LEAF);
                        self.nodes[split].children.insert(self.text[pos], leaf);
                        self.nodes[next].start += active_len;
                        let next_sym = self.text[self.nodes[next].start];
                        self.nodes[split].children.insert(next_sym, next);
                        if let Some(from) = need_link.take() {
                            self.nodes[from].link = split;
                        }
                        need_link = Some(split);
                    }
                }
                remainder -= 1;
                if active_node == 0 && active_len > 0 {
                    active_len -= 1;
                    active_edge = pos - remainder + 1;
                } else if active_node != 0 {
                    active_node = self.nodes[active_node].link;
                }
            }
        }
        // Close leaf edges.
        for node in &mut self.nodes {
            if node.end == LEAF {
                node.end = n;
            }
        }
    }

    /// DFS assigning each leaf the global start position of its suffix.
    fn assign_suffix_starts(&mut self) {
        let n = self.text.len();
        let mut stack: Vec<(NodeIdx, usize)> = vec![(0, 0)];
        while let Some((idx, depth)) = stack.pop() {
            let (start, end, is_leaf) = {
                let node = &self.nodes[idx];
                (node.start, node.end, node.children.is_empty())
            };
            let edge_len = end - start;
            let path_len = depth + edge_len;
            if is_leaf && idx != 0 {
                self.nodes[idx].suffix_start = Some(n - path_len);
            } else {
                let children: Vec<NodeIdx> = self.nodes[idx].children.values().copied().collect();
                for c in children {
                    stack.push((c, path_len));
                }
            }
        }
    }

    /// Resolves a global text position to its `(string, offset)` pair, or
    /// `None` when the position is a terminator (the empty suffix of a
    /// string).
    pub fn resolve(&self, global_pos: usize) -> Option<SuffixRef> {
        let idx = match self.string_offsets.binary_search(&global_pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let offset = global_pos - self.string_offsets[idx];
        if offset >= self.string_lens[idx] {
            return None; // points at the terminator
        }
        Some(SuffixRef {
            string_id: idx,
            offset,
        })
    }

    /// Whether `pattern` occurs as a substring of any indexed string.
    pub fn contains(&self, pattern: &[Symbol]) -> bool {
        self.walk(pattern).is_some()
    }

    /// All `(string, offset)` positions where `pattern` occurs.
    pub fn occurrences(&self, pattern: &[Symbol]) -> Vec<SuffixRef> {
        let mut out = Vec::new();
        let Some(node) = self.walk(pattern) else {
            return out;
        };
        // Collect every leaf below `node`.
        let mut stack = vec![node];
        while let Some(idx) = stack.pop() {
            let n = &self.nodes[idx];
            if n.children.is_empty() {
                if let Some(pos) = n.suffix_start {
                    if let Some(r) = self.resolve(pos) {
                        out.push(r);
                    }
                }
            } else {
                stack.extend(n.children.values().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Walks `pattern` from the root, returning the node at or below which
    /// all occurrences live.
    fn walk(&self, pattern: &[Symbol]) -> Option<NodeIdx> {
        let mut node = 0usize;
        let mut i = 0usize;
        while i < pattern.len() {
            let &next = self.nodes[node].children.get(&pattern[i])?;
            let n = &self.nodes[next];
            let label = &self.text[n.start..n.end];
            for &sym in label {
                if i == pattern.len() {
                    break;
                }
                if sym != pattern[i] {
                    return None;
                }
                i += 1;
            }
            node = next;
        }
        Some(node)
    }

    /// The children of `node` as `(first edge symbol, child)` pairs, sorted by
    /// symbol for deterministic traversal order.
    pub fn children(&self, node: NodeIdx) -> Vec<(Symbol, NodeIdx)> {
        let mut v: Vec<(Symbol, NodeIdx)> = self.nodes[node]
            .children
            .iter()
            .map(|(&s, &c)| (s, c))
            .collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        v
    }

    /// The edge label leading into `node`.
    pub fn edge_label(&self, node: NodeIdx) -> &[Symbol] {
        let n = &self.nodes[node];
        &self.text[n.start..n.end]
    }

    /// The suffix start position carried by a leaf, if `node` is a leaf.
    pub fn leaf_suffix(&self, node: NodeIdx) -> Option<SuffixRef> {
        let n = &self.nodes[node];
        if n.children.is_empty() {
            n.suffix_start.and_then(|p| self.resolve(p))
        } else {
            None
        }
    }

    /// Whether a symbol is one of the per-string terminators.
    pub fn is_terminator(&self, sym: Symbol) -> bool {
        sym >= self.sentinel_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Symbol = 1000;

    fn s(v: &[u32]) -> Vec<Symbol> {
        v.to_vec()
    }

    /// Brute-force substring check across all strings.
    fn brute_occurrences(strings: &[Vec<Symbol>], pattern: &[Symbol]) -> Vec<SuffixRef> {
        let mut out = Vec::new();
        for (id, st) in strings.iter().enumerate() {
            if pattern.len() > st.len() {
                continue;
            }
            for off in 0..=(st.len() - pattern.len()) {
                if &st[off..off + pattern.len()] == pattern {
                    out.push(SuffixRef {
                        string_id: id,
                        offset: off,
                    });
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn banana_structure() {
        // "banana" with symbols b=1 a=2 n=3.
        let strings = vec![s(&[1, 2, 3, 2, 3, 2])];
        let t = SuffixTree::build(&strings, BASE);
        assert!(t.contains(&[2, 3, 2])); // "ana"
        assert!(t.contains(&[3, 2])); // "na"
        assert!(t.contains(&[1, 2, 3, 2, 3, 2])); // whole string
        assert!(!t.contains(&[3, 3]));
        assert!(!t.contains(&[1, 1]));
        // n+1 suffixes (with terminator) => exactly n+1 leaves; node count for
        // banana$ is known to be 11 (root + 4 internal-ish + leaves); just
        // check it's within the 2n bound.
        assert!(t.node_count() <= 2 * 7 + 1);
    }

    #[test]
    fn occurrences_match_brute_force_single_string() {
        let strings = vec![s(&[1, 2, 3, 2, 3, 2])];
        let t = SuffixTree::build(&strings, BASE);
        for pattern in [
            s(&[2]),
            s(&[2, 3]),
            s(&[2, 3, 2]),
            s(&[1]),
            s(&[3, 2]),
            s(&[9]),
        ] {
            assert_eq!(
                t.occurrences(&pattern),
                brute_occurrences(&strings, &pattern),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn generalized_tree_over_multiple_strings() {
        let strings = vec![s(&[1, 2, 1, 2]), s(&[2, 1, 2, 2]), s(&[1, 1, 1])];
        let t = SuffixTree::build(&strings, BASE);
        assert_eq!(t.string_count(), 3);
        for pattern in [s(&[1, 2]), s(&[2, 2]), s(&[1, 1]), s(&[1, 2, 1]), s(&[2])] {
            assert_eq!(
                t.occurrences(&pattern),
                brute_occurrences(&strings, &pattern),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn randomized_cross_validation() {
        // Deterministic pseudo-random strings over a small alphabet, compared
        // exhaustively against brute force.
        let mut seed = 0x2545_F491u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let strings: Vec<Vec<Symbol>> = (0..6)
            .map(|_| {
                let len = 5 + (next() % 30) as usize;
                (0..len).map(|_| (next() % 4) as Symbol).collect()
            })
            .collect();
        let t = SuffixTree::build(&strings, BASE);
        // All substrings up to length 4 of all strings must be found; random
        // other patterns must agree with brute force.
        for st in &strings {
            for w in 1..=4usize.min(st.len()) {
                for win in st.windows(w) {
                    assert_eq!(
                        t.occurrences(win),
                        brute_occurrences(&strings, win),
                        "window {win:?}"
                    );
                }
            }
        }
        for _ in 0..200 {
            let len = 1 + (next() % 6) as usize;
            let pattern: Vec<Symbol> = (0..len).map(|_| (next() % 5) as Symbol).collect();
            assert_eq!(
                t.occurrences(&pattern),
                brute_occurrences(&strings, &pattern)
            );
        }
    }

    #[test]
    fn node_count_linear_bound() {
        // Suffix trees have at most 2n nodes (n = total text length).
        let strings: Vec<Vec<Symbol>> = (0..5)
            .map(|i| (0..50).map(|j| ((i * j) % 3) as Symbol).collect())
            .collect();
        let t = SuffixTree::build(&strings, BASE);
        assert!(t.node_count() <= 2 * t.text_len());
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let strings = vec![s(&[1, 2]), s(&[3])];
        let t = SuffixTree::build(&strings, BASE);
        assert!(t.contains(&[]));
        // Every position of every string (3 total).
        assert_eq!(t.occurrences(&[]).len(), 3);
    }

    #[test]
    fn single_symbol_strings() {
        let strings = vec![s(&[5]), s(&[5]), s(&[7])];
        let t = SuffixTree::build(&strings, BASE);
        let occ5 = t.occurrences(&[5]);
        assert_eq!(occ5.len(), 2);
        assert_eq!(t.occurrences(&[7]).len(), 1);
        assert!(t.occurrences(&[6]).is_empty());
    }

    #[test]
    #[should_panic(expected = "collides with sentinel space")]
    fn symbols_in_sentinel_space_rejected() {
        let _ = SuffixTree::build(&[s(&[BASE])], BASE);
    }

    #[test]
    fn resolve_maps_positions() {
        let strings = vec![s(&[1, 2, 3]), s(&[4, 5])];
        let t = SuffixTree::build(&strings, BASE);
        assert_eq!(
            t.resolve(0),
            Some(SuffixRef {
                string_id: 0,
                offset: 0
            })
        );
        assert_eq!(
            t.resolve(2),
            Some(SuffixRef {
                string_id: 0,
                offset: 2
            })
        );
        assert_eq!(t.resolve(3), None); // terminator of string 0
        assert_eq!(
            t.resolve(4),
            Some(SuffixRef {
                string_id: 1,
                offset: 0
            })
        );
        assert_eq!(t.resolve(6), None); // terminator of string 1
    }
}
