//! Property tests of the suffix-tree substrate: the generalized suffix tree
//! agrees with brute-force substring search on arbitrary string sets, stays
//! within its size bound, and the ST-Filter never dismisses a true match.

use proptest::prelude::*;

use tw_suffix::{CategoryMethod, StFilter, SuffixRef, SuffixTree};

const BASE: u32 = 1 << 16;

fn strings_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..5, 1..40), 1..8)
}

fn brute_occurrences(strings: &[Vec<u32>], pattern: &[u32]) -> Vec<SuffixRef> {
    let mut out = Vec::new();
    for (id, st) in strings.iter().enumerate() {
        if pattern.len() > st.len() {
            continue;
        }
        for off in 0..=(st.len() - pattern.len()) {
            // The tree reports the empty pattern once per suffix position
            // (0..len); exclude the empty suffix at offset == len.
            if off == st.len() {
                continue;
            }
            if &st[off..off + pattern.len()] == pattern {
                out.push(SuffixRef {
                    string_id: id,
                    offset: off,
                });
            }
        }
    }
    out.sort_unstable();
    out
}

/// Reference L∞ time-warping distance.
fn dtw_linf(s: &[f64], q: &[f64]) -> f64 {
    let (n, m) = (s.len(), q.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    let mut dp = vec![vec![f64::INFINITY; m + 1]; n + 1];
    dp[0][0] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let d = (s[i - 1] - q[j - 1]).abs();
            let best = dp[i - 1][j].min(dp[i][j - 1]).min(dp[i - 1][j - 1]);
            dp[i][j] = d.max(best);
        }
    }
    dp[n][m]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Occurrence queries agree with brute force for arbitrary patterns.
    #[test]
    fn occurrences_agree_with_brute_force(
        strings in strings_strategy(),
        pattern in prop::collection::vec(0u32..6, 0..6),
    ) {
        let tree = SuffixTree::build(&strings, BASE);
        prop_assert_eq!(
            tree.occurrences(&pattern),
            brute_occurrences(&strings, &pattern)
        );
        prop_assert_eq!(
            tree.contains(&pattern),
            !brute_occurrences(&strings, &pattern).is_empty() || pattern.is_empty()
        );
    }

    /// Historical shrink from `proptest_suffix.proptest-regressions`,
    /// promoted to a pinned case (the vendored proptest stand-in does not
    /// replay regression files): the empty pattern against a single
    /// one-symbol string must report exactly the non-empty suffix positions.
    #[test]
    fn occurrences_empty_pattern_regression(_unused in 0u8..1) {
        let strings = vec![vec![0u32]];
        let tree = SuffixTree::build(&strings, BASE);
        prop_assert_eq!(tree.occurrences(&[]), brute_occurrences(&strings, &[]));
        prop_assert!(tree.contains(&[]));
    }

    /// Every substring of every input string is found (completeness).
    #[test]
    fn all_substrings_found(strings in strings_strategy()) {
        let tree = SuffixTree::build(&strings, BASE);
        for st in &strings {
            for w in 1..=st.len().min(4) {
                for win in st.windows(w) {
                    prop_assert!(tree.contains(win), "missing window {win:?}");
                }
            }
        }
    }

    /// The node count respects the classic 2n bound.
    #[test]
    fn node_count_linear(strings in strings_strategy()) {
        let tree = SuffixTree::build(&strings, BASE);
        prop_assert!(tree.node_count() <= 2 * tree.text_len().max(1));
    }

    /// ST-Filter whole-matching soundness on arbitrary numeric databases:
    /// every sequence within tolerance appears among the candidates.
    #[test]
    fn st_filter_no_false_dismissal(
        db in prop::collection::vec(prop::collection::vec(-20.0f64..20.0, 1..12), 1..10),
        query in prop::collection::vec(-20.0f64..20.0, 1..10),
        eps in 0.0f64..10.0,
        categories in 2usize..30,
    ) {
        let filter = StFilter::build(&db, categories, CategoryMethod::EqualWidth);
        let cands = filter.whole_match_candidates(&query, eps);
        for (id, s) in db.iter().enumerate() {
            if dtw_linf(s, &query) <= eps {
                prop_assert!(
                    cands.ids.contains(&id),
                    "sequence {id} dismissed (dtw {}, eps {eps}, k {categories})",
                    dtw_linf(s, &query)
                );
            }
        }
    }

    /// Equal-frequency categorization is also sound.
    #[test]
    fn st_filter_equal_frequency_sound(
        db in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 1..10), 1..8),
        eps in 0.0f64..5.0,
    ) {
        let filter = StFilter::build(&db, 8, CategoryMethod::EqualFrequency);
        let query = db[0].clone();
        let cands = filter.whole_match_candidates(&query, eps);
        for (id, s) in db.iter().enumerate() {
            if dtw_linf(s, &query) <= eps {
                prop_assert!(cands.ids.contains(&id), "sequence {id} dismissed");
            }
        }
    }
}
