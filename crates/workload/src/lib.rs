//! # tw-workload — data and query generators for the reproduction
//!
//! Every experiment input the paper uses (or that this repository's examples
//! need), regenerable from a seed:
//!
//! * [`random_walk`] — the paper's synthetic generator (§5.1):
//!   `s_i = s_{i-1} + z_i`, `z ~ U[-0.1, 0.1]`, `s_1 ~ U[1, 10]`;
//! * [`stock`] — an S&P-500-like substitute for the paper's unavailable real
//!   data set (545 series, average length 231; see DESIGN.md §3);
//! * [`query_gen`] — the paper's query recipe: perturb a random database
//!   sequence element-wise by `U[-std/2, +std/2]`;
//! * [`patterns`] — Cylinder–Bell–Funnel and periodic/sensor-like shapes for
//!   the example applications.

#![forbid(unsafe_code)]

pub mod patterns;
pub mod query_gen;
pub mod random_walk;
pub mod stock;

pub use patterns::{cbf, cbf_dataset, periodic, periodic_with_anomaly, CbfClass};
pub use query_gen::{generate as generate_queries, std_dev};
pub use random_walk::{generate as generate_random_walks, RandomWalkConfig};
pub use stock::{generate as generate_stocks, normalize_to_unit_range, StockConfig};
