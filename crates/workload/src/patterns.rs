//! Pattern-shaped generators used by the example applications: the classic
//! Cylinder–Bell–Funnel benchmark family and periodic (ECG/sensor-like)
//! waves. These are not part of the paper's evaluation; they give the
//! examples realistic, visually distinct workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The three Cylinder–Bell–Funnel classes (Saito 1994).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbfClass {
    /// A flat plateau between onset and offset.
    Cylinder,
    /// A linear ramp up to the offset, then a drop.
    Bell,
    /// A drop at the onset, then a linear ramp down.
    Funnel,
}

/// Generates one CBF sequence of length `len` with unit noise amplitude
/// `noise`.
pub fn cbf(class: CbfClass, len: usize, noise: f64, seed: u64) -> Vec<f64> {
    assert!(len >= 16, "CBF patterns need some room, got {len}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let a = rng.gen_range(len / 8..len / 4); // onset
    let b = rng.gen_range(len / 2..(7 * len) / 8); // offset
    let amp = 6.0 + rng.gen_range(-1.0..1.0);
    (0..len)
        .map(|t| {
            let base = if t < a || t > b {
                0.0
            } else {
                match class {
                    CbfClass::Cylinder => amp,
                    CbfClass::Bell => amp * (t - a) as f64 / (b - a) as f64,
                    CbfClass::Funnel => amp * (b - t) as f64 / (b - a) as f64,
                }
            };
            base + noise * rng.gen_range(-1.0_f64..1.0)
        })
        .collect()
}

/// A labelled CBF data set: `count` sequences cycling through the classes.
pub fn cbf_dataset(count: usize, len: usize, noise: f64, seed: u64) -> Vec<(CbfClass, Vec<f64>)> {
    let classes = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
    (0..count)
        .map(|i| {
            let class = classes[i % 3];
            (class, cbf(class, len, noise, seed.wrapping_add(i as u64)))
        })
        .collect()
}

/// A noisy periodic wave: `amplitude * sin(2π * t / period) + drift * t`,
/// the shape of respiration/ECG-adjacent sensor channels.
pub fn periodic(len: usize, period: f64, amplitude: f64, noise: f64, seed: u64) -> Vec<f64> {
    assert!(period > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..len)
        .map(|t| {
            amplitude * ((std::f64::consts::TAU * t as f64 / period) + phase).sin()
                + noise * rng.gen_range(-1.0_f64..1.0)
        })
        .collect()
}

/// A periodic wave with an injected anomaly: a window where the signal
/// flat-lines (sensor stuck) — used by the sensor-monitoring example.
pub fn periodic_with_anomaly(
    len: usize,
    period: f64,
    amplitude: f64,
    noise: f64,
    anomaly_at: usize,
    anomaly_len: usize,
    seed: u64,
) -> Vec<f64> {
    let mut seq = periodic(len, period, amplitude, noise, seed);
    let end = (anomaly_at + anomaly_len).min(len);
    let stuck = seq.get(anomaly_at).copied().unwrap_or(0.0);
    for v in &mut seq[anomaly_at.min(len)..end] {
        *v = stuck;
    }
    seq
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // Tests assert exact float round-trips and identities on purpose.
mod tests {
    use super::*;

    #[test]
    fn cbf_classes_have_distinct_shapes() {
        let len = 128;
        let cyl = cbf(CbfClass::Cylinder, len, 0.0, 1);
        let bell = cbf(CbfClass::Bell, len, 0.0, 1);
        let fun = cbf(CbfClass::Funnel, len, 0.0, 1);
        // Same seed => same onset/offset; compare interior shapes.
        let peak_pos = |s: &[f64]| {
            s.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        // Bell peaks late in the event window, funnel peaks early.
        assert!(peak_pos(&bell) > peak_pos(&fun));
        // Cylinder's event window is flat.
        let max = cyl.iter().cloned().fold(f64::MIN, f64::max);
        let plateau: Vec<&f64> = cyl.iter().filter(|&&v| v > max * 0.9).collect();
        assert!(plateau.len() > 10);
    }

    #[test]
    fn cbf_dataset_cycles_classes() {
        let ds = cbf_dataset(9, 64, 0.1, 5);
        assert_eq!(ds.len(), 9);
        assert_eq!(ds[0].0, CbfClass::Cylinder);
        assert_eq!(ds[1].0, CbfClass::Bell);
        assert_eq!(ds[2].0, CbfClass::Funnel);
        assert_eq!(ds[3].0, CbfClass::Cylinder);
    }

    #[test]
    fn periodic_oscillates_with_right_period() {
        let p = periodic(200, 50.0, 2.0, 0.0, 3);
        // Autocorrelation at lag=period should be strongly positive.
        let corr: f64 = p[..150].iter().zip(&p[50..]).map(|(a, b)| a * b).sum();
        let energy: f64 = p[..150].iter().map(|a| a * a).sum();
        assert!(corr > 0.9 * energy, "corr {corr} energy {energy}");
    }

    #[test]
    fn anomaly_flatlines_window() {
        let s = periodic_with_anomaly(100, 20.0, 3.0, 0.0, 40, 10, 7);
        for w in s[40..50].windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(
            cbf(CbfClass::Bell, 64, 0.3, 9),
            cbf(CbfClass::Bell, 64, 0.3, 9)
        );
        assert_eq!(
            periodic(64, 16.0, 1.0, 0.2, 4),
            periodic(64, 16.0, 1.0, 0.2, 4)
        );
    }
}
