//! The paper's query generator (§5.1).
//!
//! Each query is built by (1) selecting a random data sequence, (2) drawing a
//! random value from `[-std/2, +std/2]` per element — where `std` is the
//! standard deviation of the selected sequence — and (3) adding it to the
//! element. Queries therefore resemble database sequences without being
//! exact copies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Standard deviation of a sequence (population form).
pub fn std_dev(seq: &[f64]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let n = seq.len() as f64;
    let mean = seq.iter().sum::<f64>() / n;
    let var = seq.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt()
}

/// Generates `count` query sequences from `data` using the paper's recipe.
///
/// # Panics
/// Panics when `data` is empty.
pub fn generate(data: &[Vec<f64>], count: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(
        !data.is_empty(),
        "cannot generate queries from an empty database"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let base = &data[rng.gen_range(0..data.len())];
            perturb(base, &mut rng)
        })
        .collect()
}

/// Perturbs one sequence per the paper's recipe.
fn perturb(base: &[f64], rng: &mut SmallRng) -> Vec<f64> {
    let half = std_dev(base) / 2.0;
    base.iter()
        .map(|&v| {
            if half > 0.0 {
                v + rng.gen_range(-half..=half)
            } else {
                v
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // Tests assert exact float round-trips and identities on purpose.
mod tests {
    use super::*;

    fn db() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![10.0, 10.0, 10.0],
            vec![0.0, 100.0],
        ]
    }

    #[test]
    fn std_dev_known_values() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
        assert!((std_dev(&[1.0, 2.0, 3.0, 4.0, 5.0]) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(std_dev(&[0.0, 100.0]), 50.0);
    }

    #[test]
    fn queries_have_database_lengths() {
        let queries = generate(&db(), 50, 1);
        assert_eq!(queries.len(), 50);
        let lens: Vec<usize> = db().iter().map(|s| s.len()).collect();
        for q in &queries {
            assert!(lens.contains(&q.len()));
        }
    }

    #[test]
    fn perturbation_bounded_by_half_std() {
        let data = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]];
        let half = std_dev(&data[0]) / 2.0;
        for q in generate(&data, 100, 2) {
            for (qv, dv) in q.iter().zip(&data[0]) {
                assert!((qv - dv).abs() <= half + 1e-12);
            }
        }
    }

    #[test]
    fn constant_sequence_yields_identical_query() {
        let data = vec![vec![7.0, 7.0, 7.0, 7.0]];
        for q in generate(&data, 5, 3) {
            assert_eq!(q, data[0]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(&db(), 10, 9), generate(&db(), 10, 9));
        assert_ne!(generate(&db(), 10, 9), generate(&db(), 10, 10));
    }
}
