//! The paper's synthetic data generator (§5.1).
//!
//! Each sequence follows the random walk `s_i = s_{i-1} + z_i` where `z_i` is
//! IID uniform on `[-0.1, 0.1]` and the first element is uniform on `[1, 10]`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random-walk generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkConfig {
    /// Number of sequences.
    pub count: usize,
    /// Length of every sequence. The paper fixes lengths per experiment
    /// (1,000 for Experiment 3; swept 100..5,000 in Experiment 4).
    pub len: usize,
    /// Step bound: `z_i ~ U[-step, step]`. Paper: 0.1.
    pub step: f64,
    /// First element range: `s_1 ~ U[start_min, start_max]`. Paper: [1, 10].
    pub start_min: f64,
    pub start_max: f64,
}

impl RandomWalkConfig {
    /// The paper's exact parameters with a caller-chosen scale.
    pub fn paper(count: usize, len: usize) -> Self {
        Self {
            count,
            len,
            step: 0.1,
            start_min: 1.0,
            start_max: 10.0,
        }
    }
}

/// Generates the configured number of random-walk sequences.
pub fn generate(config: &RandomWalkConfig, seed: u64) -> Vec<Vec<f64>> {
    assert!(config.len >= 1, "sequences must have at least one element");
    assert!(config.step >= 0.0);
    assert!(config.start_min <= config.start_max);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..config.count)
        .map(|_| generate_one(config, &mut rng))
        .collect()
}

// Exact-equality guards: `gen_range` panics on empty ranges, so degenerate
// bounds must be caught with `==`, not a tolerance.
#[allow(clippy::float_cmp)]
fn generate_one(config: &RandomWalkConfig, rng: &mut SmallRng) -> Vec<f64> {
    let mut seq = Vec::with_capacity(config.len);
    let mut v = if config.start_min == config.start_max {
        config.start_min
    } else {
        rng.gen_range(config.start_min..config.start_max)
    };
    seq.push(v);
    for _ in 1..config.len {
        // tw-allow(float-eq): exact-zero step guard — gen_range rejects an empty range
        let z = if config.step == 0.0 {
            0.0
        } else {
            rng.gen_range(-config.step..=config.step)
        };
        v += z;
        seq.push(v);
    }
    seq
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // Tests assert exact float round-trips and identities on purpose.
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = RandomWalkConfig::paper(10, 100);
        let data = generate(&cfg, 1);
        assert_eq!(data.len(), 10);
        assert!(data.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn steps_bounded_by_config() {
        let cfg = RandomWalkConfig::paper(5, 500);
        for seq in generate(&cfg, 2) {
            for w in seq.windows(2) {
                assert!((w[1] - w[0]).abs() <= 0.1 + 1e-12);
            }
        }
    }

    #[test]
    fn first_elements_in_range() {
        let cfg = RandomWalkConfig::paper(100, 2);
        for seq in generate(&cfg, 3) {
            assert!((1.0..10.0).contains(&seq[0]), "first {}", seq[0]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomWalkConfig::paper(3, 50);
        assert_eq!(generate(&cfg, 42), generate(&cfg, 42));
        assert_ne!(generate(&cfg, 42), generate(&cfg, 43));
    }

    #[test]
    fn zero_step_is_constant_sequence() {
        let cfg = RandomWalkConfig {
            count: 1,
            len: 10,
            step: 0.0,
            start_min: 5.0,
            start_max: 5.0,
        };
        let data = generate(&cfg, 9);
        assert!(data[0].iter().all(|&v| v == 5.0));
    }
}
