//! S&P-500-like stock data generator.
//!
//! The paper's real data set — 545 S&P 500 daily series of average length 231
//! from `biz.swcp.com/stocks` — is no longer obtainable, so this module
//! generates a statistically comparable substitute (DESIGN.md §3): geometric
//! random walks with per-sequence drift and volatility regimes, lengths
//! scattered around the paper's average so that cross-length DTW is actually
//! exercised, and price levels clustered the way listed equities are. The
//! properties that matter to Experiments 1–2 — clustered 4-tuple feature
//! vectors, heavy candidate overlap at large tolerances, varying lengths —
//! are all present.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the stock-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StockConfig {
    /// Number of series. Paper: 545.
    pub count: usize,
    /// Mean series length. Paper: 231 (average over the data set).
    pub mean_len: usize,
    /// Half-width of the uniform length jitter around `mean_len`.
    pub len_jitter: usize,
}

impl StockConfig {
    /// The paper's data-set shape: 545 series, average length 231.
    pub fn sp500() -> Self {
        Self {
            count: 545,
            mean_len: 231,
            len_jitter: 60,
        }
    }
}

/// Generates stock-like price series.
pub fn generate(config: &StockConfig, seed: u64) -> Vec<Vec<f64>> {
    assert!(
        config.mean_len > config.len_jitter,
        "jitter exceeds mean length"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..config.count)
        .map(|_| generate_one(config, &mut rng))
        .collect()
}

fn generate_one(config: &StockConfig, rng: &mut SmallRng) -> Vec<f64> {
    let len = if config.len_jitter == 0 {
        config.mean_len
    } else {
        rng.gen_range(config.mean_len - config.len_jitter..=config.mean_len + config.len_jitter)
    };
    // Log-normal-ish initial price clustered in a common band (most of the
    // index trades between ~$16 and ~$36): listed equities overlap heavily
    // in *range* while differing in *shape*, which is what makes range-only
    // lower bounds (LB_Yi) weak on this data and endpoint-aware ones
    // (LB_Kim) strong — the effect Figures 2-3 measure.
    let log_price = rng.gen_range(2.8_f64..3.6);
    let mut price = log_price.exp();
    // Per-series drift and volatility regime (annualized-ish, per-step).
    let drift = rng.gen_range(-0.0010_f64..0.0014);
    let base_vol = rng.gen_range(0.015_f64..0.045);

    let mut seq = Vec::with_capacity(len);
    let mut vol = base_vol;
    for step in 0..len {
        seq.push(price);
        // Occasional volatility regime shifts (GARCH-flavoured).
        if step % 40 == 39 {
            vol = (vol * rng.gen_range(0.7..1.4)).clamp(0.25 * base_vol, 4.0 * base_vol);
        }
        // Symmetric triangular-ish shock from the sum of two uniforms.
        let shock = (rng.gen_range(-1.0_f64..1.0) + rng.gen_range(-1.0_f64..1.0)) * 0.5;
        price *= 1.0 + drift + vol * shock;
        price = price.max(0.05); // no negative prices
    }
    seq
}

/// Normalizes prices so the time-warping tolerance scale matches the paper's
/// synthetic data (values of order 1–10). The paper queries the stock set
/// with tolerances of the same order as the synthetic set.
pub fn normalize_to_unit_range(data: &mut [Vec<f64>], target_lo: f64, target_hi: f64) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in data.iter() {
        for &v in s {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let target_span = target_hi - target_lo;
    for s in data.iter_mut() {
        for v in s.iter_mut() {
            *v = target_lo + (*v - lo) / span * target_span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp500_shape() {
        let data = generate(&StockConfig::sp500(), 7);
        assert_eq!(data.len(), 545);
        let mean: f64 = data.iter().map(|s| s.len() as f64).sum::<f64>() / data.len() as f64;
        assert!((mean - 231.0).abs() < 20.0, "mean length {mean}");
        // Lengths vary (cross-length DTW is exercised).
        let min = data.iter().map(|s| s.len()).min().unwrap();
        let max = data.iter().map(|s| s.len()).max().unwrap();
        assert!(min < max);
    }

    #[test]
    fn prices_positive() {
        for s in generate(&StockConfig::sp500(), 9) {
            assert!(s.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StockConfig {
            count: 10,
            mean_len: 50,
            len_jitter: 10,
        };
        assert_eq!(generate(&cfg, 5), generate(&cfg, 5));
        assert_ne!(generate(&cfg, 5), generate(&cfg, 6));
    }

    #[test]
    fn series_fluctuate() {
        // A stock series should not be monotone or constant.
        for s in generate(&StockConfig::sp500(), 11).iter().take(20) {
            let ups = s.windows(2).filter(|w| w[1] > w[0]).count();
            let downs = s.windows(2).filter(|w| w[1] < w[0]).count();
            assert!(ups > 0 && downs > 0);
        }
    }

    #[test]
    fn normalization_maps_to_target_range() {
        let mut data = generate(
            &StockConfig {
                count: 20,
                mean_len: 100,
                len_jitter: 20,
            },
            3,
        );
        normalize_to_unit_range(&mut data, 1.0, 10.0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &data {
            for &v in s {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        assert!((lo - 1.0).abs() < 1e-9);
        assert!((hi - 10.0).abs() < 1e-9);
    }
}
