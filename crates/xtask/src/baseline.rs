//! The violation ratchet: `analyze-baseline.toml`.
//!
//! The baseline records, per `(file, rule)`, how many violations are
//! grandfathered in as debt. A run fails only when a count *grows*; counts
//! that shrink are reported so `--fix-baseline` can lock the improvement
//! in. The granularity is deliberately per-file-per-rule counts rather
//! than per-line entries: line-keyed baselines rot on every unrelated
//! edit, counts only move when the debt itself moves.
//!
//! The format is a tiny TOML subset (array-of-tables with string/integer
//! values) so that the analyzer stays dependency-free; both the writer and
//! the parser live here and round-trip each other.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Grandfathered violation counts keyed by `(file, rule)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, String), u64>,
}

impl Baseline {
    /// Parses the baseline file. A missing file is an empty baseline (the
    /// ratchet starts at zero debt).
    pub fn load(path: &Path) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(text) => {
                Self::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e),
        }
    }

    /// Parses the TOML subset produced by [`Baseline::render`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<u64>)> = None;
        let mut flush = |cur: &mut Option<(Option<String>, Option<String>, Option<u64>)>| {
            if let Some((file, rule, count)) = cur.take() {
                match (file, rule, count) {
                    (Some(f), Some(r), Some(c)) => {
                        entries.insert((f, r), c);
                        Ok(())
                    }
                    _ => Err("incomplete [[entry]] (need file, rule, count)".to_string()),
                }
            } else {
                Ok(())
            }
        };
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut cur)?;
                cur = Some((None, None, None));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
            let entry = cur
                .as_mut()
                .ok_or_else(|| format!("line {}: key outside [[entry]]", n + 1))?;
            let value = value.trim();
            match key.trim() {
                "file" => entry.0 = Some(unquote(value)?),
                "rule" => entry.1 = Some(unquote(value)?),
                "count" => {
                    entry.2 = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("line {}: bad count {value:?}", n + 1))?,
                    )
                }
                other => return Err(format!("line {}: unknown key {other:?}", n + 1)),
            }
        }
        flush(&mut cur)?;
        Ok(Self { entries })
    }

    /// Serializes the baseline, sorted by file then rule.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# tw-analyze violation ratchet. Grandfathered debt, counted per (file, rule).\n\
             # CI fails when a count grows. Regenerate after intentional changes with:\n\
             #   cargo run -p xtask -- analyze --fix-baseline\n",
        );
        for ((file, rule), count) in &self.entries {
            let _ = write!(
                out,
                "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\ncount = {count}\n"
            );
        }
        out
    }

    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }

    /// Entries that no longer describe anything real: the file is gone from
    /// the tree, or the rule was removed from the catalog. A stale entry is
    /// dead weight that silently misstates the debt, so `analyze` fails on
    /// them and `--fix-baseline` prunes them.
    pub fn stale_entries(&self, root: &Path) -> Vec<(String, String, &'static str)> {
        self.entries
            .keys()
            .filter_map(|(file, rule)| {
                if !crate::rules::is_known_rule(rule) {
                    Some((file.clone(), rule.clone(), "rule no longer exists"))
                } else if !root.join(file).is_file() {
                    Some((file.clone(), rule.clone(), "file no longer exists"))
                } else {
                    None
                }
            })
            .collect()
    }
}

fn unquote(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or_else(|| format!("expected quoted string, got {v:?}"))
}

/// Outcome of checking current counts against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// `(file, rule, current, baselined)` where current > baselined: CI fails.
    pub regressions: Vec<(String, String, u64, u64)>,
    /// Debt that shrank or vanished: lock in with `--fix-baseline`.
    pub improvements: Vec<(String, String, u64, u64)>,
}

impl Comparison {
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Compares current violation counts with the committed baseline.
pub fn compare(current: &BTreeMap<(String, String), u64>, baseline: &Baseline) -> Comparison {
    let mut cmp = Comparison::default();
    for ((file, rule), &count) in current {
        let base = baseline
            .entries
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if count > base {
            cmp.regressions
                .push((file.clone(), rule.clone(), count, base));
        } else if count < base {
            cmp.improvements
                .push((file.clone(), rule.clone(), count, base));
        }
    }
    for ((file, rule), &base) in &baseline.entries {
        if !current.contains_key(&(file.clone(), rule.clone())) && base > 0 {
            cmp.improvements.push((file.clone(), rule.clone(), 0, base));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Baseline::default();
        b.entries
            .insert(("crates/core/src/x.rs".into(), "slice-index".into()), 7);
        b.entries
            .insert(("crates/storage/src/y.rs".into(), "unwrap".into()), 2);
        let parsed = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_and_comments_parse() {
        let b = Baseline::parse("# nothing here\n\n").expect("parses");
        assert!(b.entries.is_empty());
    }

    #[test]
    fn stale_entries_flag_missing_files_and_removed_rules() {
        let mut b = Baseline::default();
        b.entries
            .insert(("crates/xtask/src/lib.rs".into(), "unwrap".into()), 1);
        b.entries
            .insert(("crates/ghost/src/gone.rs".into(), "unwrap".into()), 2);
        b.entries
            .insert(("crates/xtask/src/lib.rs".into(), "retired-rule".into()), 3);
        let root = crate::walk::find_root(None).expect("workspace root");
        let stale = b.stale_entries(&root);
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale
            .iter()
            .any(|(f, _, why)| f.contains("ghost") && why.contains("file")));
        assert!(stale
            .iter()
            .any(|(_, r, why)| r == "retired-rule" && why.contains("rule")));
    }

    #[test]
    fn ratchet_direction() {
        let mut base = Baseline::default();
        base.entries.insert(("a.rs".into(), "unwrap".into()), 3);
        base.entries.insert(("b.rs".into(), "cast".into()), 1);
        let mut current = BTreeMap::new();
        current.insert(("a.rs".into(), "unwrap".into()), 4); // grew
        let cmp = compare(&current, &base);
        assert!(cmp.is_regression());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.improvements.len(), 1); // b.rs debt vanished

        current.insert(("a.rs".into(), "unwrap".into()), 3);
        current.insert(("b.rs".into(), "cast".into()), 1);
        assert!(!compare(&current, &base).is_regression());
    }
}
