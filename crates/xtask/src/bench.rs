//! `xtask bench` — the seeded workload matrix behind `BENCH_search.json`.
//!
//! Runs every search engine over a corpus-size × sequence-length × ε grid of
//! seeded random-walk workloads, aggregates the [`tw_core::QueryStats`]
//! pipeline counters per engine, and writes one JSON document with a pinned
//! schema (see [`validate`]). Everything except the `elapsed_ms` fields is a
//! pure function of the seed, which is what the schema-pin test in
//! `crates/xtask/tests/bench_schema.rs` locks down.
//!
//! ```text
//! cargo run -p xtask -- bench --smoke          # CI-sized run
//! cargo run -p xtask -- bench                  # full matrix
//! cargo run -p xtask -- bench --large          # ≥1M-sequence sharded arm
//! cargo run -p xtask -- validate-bench [FILE]  # schema check only
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use tw_core::distance::DtwKind;
use tw_core::search::{
    CorpusSharder, EngineOpts, FastMapSearch, HybridSearch, LbScan, NaiveScan, ResilientSearch,
    SearchEngine, ShardedSearch, StFilterSearch, TwSimSearch,
};
use tw_core::{BoundTier, CascadeSpec, ConcurrentIngest, QueryStats};
use tw_storage::{EnvelopeSidecar, MemPager, SequenceStore};
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

use crate::json::{self, Json};

/// Bump when a field is added, removed or renamed. The schema-pin test and
/// [`validate`] both key off this.
///
/// v2: every engine is run twice — with and without the standard lower-bound
/// cascade — so each `per_engine` entry is now keyed by [`ARMS`], and the
/// per-tier prune ledger grew the `lb_keogh` / `lb_improved` tiers.
///
/// v3: a top-level `ingest` arm — a seeded append run through the WAL-backed
/// `ConcurrentIngest` recording append count, WAL record/byte volume and the
/// checkpoint fold. Everything except `elapsed_ms` is a pure function of the
/// seed.
///
/// v4: a top-level `large` arm — a sharded out-of-core tier: the corpus is
/// ingested through `CorpusSharder` into per-shard segment files, reopened
/// through small buffer pools, and queried via the `ShardedSearch` fan-out.
/// The arm records its own scale config beside the merged query ledger and
/// the out-of-core witness (`pool_misses > resident_frames`). `--large`
/// raises the arm to ≥1M sequences; `--smoke` keeps CI at a scaled-down
/// corpus running the identical code path. The cascade_on arm now also
/// prepares each query's `BoundCascade` once per query set and reuses it
/// across engines and ε values (`EngineOpts::prepared_cascade`), instead of
/// recompiling envelopes per engine invocation.
pub const SCHEMA_VERSION: u64 = 4;

/// Engine labels in report order — every run covers all seven.
pub const ENGINES: [&str; 7] = [
    "naive-scan",
    "lb-scan",
    "st-filter",
    "tw-sim-search",
    "fastmap",
    "hybrid",
    "resilient-search",
];

/// The cascade dimension: each engine runs the matrix once per arm.
pub const ARMS: [&str; 2] = ["cascade_off", "cascade_on"];

/// The seeded workload matrix. Every field is recorded in the emitted
/// `config` object so a run is reproducible from the file alone.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// CI-sized run (single small cell) vs. the full matrix.
    pub smoke: bool,
    /// Master seed for corpus and query generation.
    pub seed: u64,
    pub corpus_sizes: Vec<usize>,
    pub seq_lens: Vec<usize>,
    pub epsilons: Vec<f64>,
    pub queries_per_cell: usize,
    /// Verification threads handed to [`EngineOpts`].
    pub threads: usize,
    /// Scale of the sharded out-of-core `large` arm.
    pub large: LargeTier,
}

/// Scale knobs for the `large` arm: a sharded on-disk corpus queried through
/// deliberately tiny buffer pools so the arm *must* do real I/O. All fields
/// are recorded in the emitted `large` object.
#[derive(Debug, Clone)]
pub struct LargeTier {
    pub sequences: usize,
    pub seq_len: usize,
    pub shard_capacity: usize,
    /// Buffer-pool frames per shard at query time — kept far below the
    /// shard's page count so `pool_misses > resident_frames` is structural.
    pub pool_pages: usize,
    pub queries: usize,
    pub epsilon: f64,
}

impl LargeTier {
    /// CI scale: a few hundred sequences through the identical sharded
    /// code path (same shards-per-pool ratio as the million-row run).
    pub fn smoke() -> Self {
        Self {
            sequences: 400,
            seq_len: 32,
            shard_capacity: 100,
            pool_pages: 2,
            queries: 2,
            epsilon: 0.5,
        }
    }

    /// Default (full-matrix) scale: big enough to span several shards and
    /// thrash the pools, small enough for a dev-loop run.
    pub fn full() -> Self {
        Self {
            sequences: 5_000,
            seq_len: 32,
            shard_capacity: 1_024,
            pool_pages: 4,
            queries: 2,
            epsilon: 0.5,
        }
    }

    /// The `--large` tier: ≥1M sequences, out of core by construction
    /// (16 shards × 32 resident frames against ~260k data pages).
    pub fn million() -> Self {
        Self {
            sequences: 1_000_000,
            seq_len: 32,
            shard_capacity: 65_536,
            pool_pages: 32,
            queries: 2,
            epsilon: 0.5,
        }
    }
}

impl BenchConfig {
    /// The CI configuration: one small cell, fast enough for every push.
    pub fn smoke(seed: u64) -> Self {
        Self {
            smoke: true,
            seed,
            corpus_sizes: vec![60],
            seq_lens: vec![32],
            epsilons: vec![0.3],
            queries_per_cell: 3,
            threads: 2,
            large: LargeTier::smoke(),
        }
    }

    /// The full matrix: spans the selectivity regimes of Figures 2–5
    /// without taking hours.
    pub fn full(seed: u64) -> Self {
        Self {
            smoke: false,
            seed,
            corpus_sizes: vec![200, 500],
            seq_lens: vec![64, 128],
            epsilons: vec![0.1, 0.3],
            queries_per_cell: 5,
            threads: 2,
            large: LargeTier::full(),
        }
    }
}

/// Per-engine aggregation over the whole matrix.
#[derive(Debug, Default, Clone)]
struct EngineAgg {
    elapsed_nanos: u128,
    stats: QueryStats,
    /// Sum of per-query database row counts — the candidate-ratio
    /// denominator.
    rows_seen: u64,
    matches: u64,
}

/// Runs the matrix — every engine in both cascade arms — and returns the
/// report document. Fails (rather than silently emitting nonsense) if any
/// engine's pipeline accounting is unbalanced or an exact engine disagrees
/// with the naive scan in either arm.
pub fn run(config: &BenchConfig, commit: &str) -> Result<Json, String> {
    let mut aggs: Vec<[EngineAgg; 2]> = vec![Default::default(); ENGINES.len()];
    let base = EngineOpts::new()
        .kind(DtwKind::MaxAbs)
        .threads(config.threads);

    let mut cell = 0u64;
    for &n in &config.corpus_sizes {
        for &len in &config.seq_lens {
            cell += 1;
            let data = generate_random_walks(&RandomWalkConfig::paper(n, len), config.seed + cell);
            let mut store = SequenceStore::in_memory();
            for s in &data {
                store
                    .append(s)
                    .map_err(|e| format!("appending workload sequence: {e}"))?;
            }
            // The on-arm gets ingest-time candidate envelopes, so the bench
            // exercises the sidecar fast path the way a deployment would.
            let sidecar = EnvelopeSidecar::build(&store, None)
                .map_err(|e| format!("building envelope sidecar: {e}"))?;
            let opts_on = base
                .clone()
                .cascade(CascadeSpec::standard().envelopes(Arc::new(sidecar)));
            let engines = build_engines(&store)?;
            let queries = generate_queries(&data, config.queries_per_cell, config.seed + cell);
            for query in &queries {
                // Compile the on-arm's cascade once per query and reuse it
                // across every engine and ε (the prepared bounds are
                // ε-independent; only `check` takes the tolerance). Before
                // v4 every engine invocation recompiled the query envelope.
                let opts_arms = match opts_on.arm_cascade(query) {
                    Some(prepared) => [base.clone(), opts_on.clone().prepared_cascade(prepared)],
                    None => [base.clone(), opts_on.clone()],
                };
                for &epsilon in &config.epsilons {
                    run_query(&store, &engines, query, epsilon, &opts_arms, &mut aggs)?;
                }
            }
        }
    }

    let ingest = run_ingest_arm(config)?;
    let large = run_large_arm(config)?;
    Ok(report(config, commit, &aggs, ingest, large))
}

/// The `large` arm: shard a seeded corpus onto disk through
/// [`CorpusSharder`] (sidecars off — at scale their footprint exceeds their
/// pruning value), reopen it through deliberately small per-shard buffer
/// pools, and fan seeded queries out through [`ShardedSearch`]. The corpus
/// pages outnumber the resident pool frames by construction, so the
/// recorded `pool_misses > resident_frames` witnesses real out-of-core
/// I/O; every counter except the two elapsed fields is a pure function of
/// the seed.
fn run_large_arm(config: &BenchConfig) -> Result<Json, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let lt = &config.large;
    let dir = std::env::temp_dir().join(format!(
        "tw-bench-large-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();

    // Ingest: stream seeded batches through the sharder so the corpus is
    // never resident in memory, then commit the manifest.
    const BATCH: usize = 10_000;
    let started = Instant::now();
    let mut sharder = CorpusSharder::create(&dir, lt.shard_capacity)
        .map_err(|e| format!("large arm: creating sharder: {e}"))?
        .sidecars(false);
    let mut appended = 0usize;
    let mut batch_index = 0u64;
    while appended < lt.sequences {
        let n = BATCH.min(lt.sequences - appended);
        let data = generate_random_walks(
            &RandomWalkConfig::paper(n, lt.seq_len),
            config.seed ^ 0x4C41_5247 ^ batch_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        for s in &data {
            sharder
                .append(s)
                .map_err(|e| format!("large arm: append: {e}"))?;
        }
        appended += n;
        batch_index += 1;
    }
    let manifest = sharder
        .finish()
        .map_err(|e| format!("large arm: committing manifest: {e}"))?;
    let ingest_elapsed = started.elapsed();

    // Query: reopen through small pools and fan out. Every shard ledger
    // must balance and sum exactly to the merged ledger — the bench holds
    // itself to the fan-out accounting invariant on every run.
    let started = Instant::now();
    let (sharded, reports) = ShardedSearch::open_dir(&dir, lt.pool_pages)
        .map_err(|e| format!("large arm: opening corpus: {e}"))?;
    if reports.iter().any(|r| !r.is_clean()) {
        return Err("large arm: freshly committed corpus needed recovery".to_string());
    }
    if sharded.total_sequences() != lt.sequences as u64 {
        return Err(format!(
            "large arm: manifest names {} sequence(s), ingested {}",
            sharded.total_sequences(),
            lt.sequences
        ));
    }
    let queries = generate_random_walks(
        &RandomWalkConfig::paper(lt.queries, lt.seq_len),
        config.seed ^ 0x51_5259,
    );
    let opts = EngineOpts::new()
        .kind(DtwKind::MaxAbs)
        .threads(config.threads);
    let mut qs = QueryStats::default();
    let mut matches = 0u64;
    let mut candidates = 0u64;
    for query in &queries {
        let out = sharded
            .range_search_sharded(query, lt.epsilon, &opts)
            .map_err(|e| format!("large arm: query: {e}"))?;
        if !out.merged.query_stats.accounting_balanced() {
            return Err(format!(
                "large arm: unbalanced fan-out ledger: {:?}",
                out.merged.query_stats
            ));
        }
        let mut summed = QueryStats::default();
        for shard in &out.per_shard {
            if !shard.query_stats.accounting_balanced() {
                return Err("large arm: unbalanced shard ledger".to_string());
            }
            summed.merge(&shard.query_stats);
        }
        if !summed.counters_eq(&out.merged.query_stats) {
            return Err("large arm: merged ledger is not the per-shard sum".to_string());
        }
        candidates += out.merged.stats.candidates as u64;
        matches += out.merged.matches.len() as u64;
        qs.merge(&out.merged.query_stats);
    }
    let query_elapsed = started.elapsed();
    let pool_misses = sharded.pool_misses();
    let resident_frames = (manifest.shard_count() * lt.pool_pages) as u64;
    if pool_misses <= resident_frames {
        return Err(format!(
            "large arm: not out of core: {pool_misses} pool miss(es) against \
             {resident_frames} resident frame(s)"
        ));
    }
    drop(sharded);
    std::fs::remove_dir_all(&dir).ok();

    Ok(Json::Obj(vec![
        (
            "ingest_elapsed_ms".to_string(),
            Json::Num(ingest_elapsed.as_nanos() as f64 / 1e6),
        ),
        (
            "query_elapsed_ms".to_string(),
            Json::Num(query_elapsed.as_nanos() as f64 / 1e6),
        ),
        ("sequences".to_string(), num(lt.sequences as u64)),
        ("seq_len".to_string(), num(lt.seq_len as u64)),
        ("shard_capacity".to_string(), num(lt.shard_capacity as u64)),
        ("shards".to_string(), num(manifest.shard_count() as u64)),
        (
            "pool_pages_per_shard".to_string(),
            num(lt.pool_pages as u64),
        ),
        ("resident_frames".to_string(), num(resident_frames)),
        ("queries".to_string(), num(lt.queries as u64)),
        ("epsilon".to_string(), Json::Num(lt.epsilon)),
        ("matches".to_string(), num(matches)),
        ("candidates".to_string(), num(candidates)),
        ("verified".to_string(), num(qs.verified)),
        ("skipped_unverified".to_string(), num(qs.skipped_unverified)),
        ("dtw_cells".to_string(), num(qs.dtw_cells)),
        ("pager_reads".to_string(), num(qs.pager_reads)),
        ("pool_misses".to_string(), num(pool_misses)),
    ]))
}

/// The `ingest` arm: a seeded append run through the WAL-backed concurrent
/// ingest path. Every append is WAL-committed (the acknowledgement point),
/// then one checkpoint folds the tail into the base store and index. All
/// counters except `elapsed_ms` are a pure function of the seed.
fn run_ingest_arm(config: &BenchConfig) -> Result<Json, String> {
    let appends = if config.smoke { 60 } else { 240 };
    let len = config.seq_lens.first().copied().unwrap_or(32);
    let data = generate_random_walks(
        &RandomWalkConfig::paper(appends, len),
        config.seed ^ 0x1A6E57,
    );

    let ingest = ConcurrentIngest::in_memory();
    let started = Instant::now();
    let mut writer = ingest
        .writer()
        .map_err(|e| format!("ingest arm: claiming writer: {e}"))?;
    for s in &data {
        writer
            .append(s)
            .map_err(|e| format!("ingest arm: append: {e}"))?;
    }
    // WAL volume is read *before* the checkpoint truncates the log: this is
    // the full durability cost of the append run.
    let wal_records = ingest.wal_committed_records();
    let wal_bytes = ingest.wal_committed_bytes();
    let folded = writer
        .checkpoint()
        .map_err(|e| format!("ingest arm: checkpoint: {e}"))?;
    let elapsed_nanos = started.elapsed().as_nanos();

    if ingest.len() != data.len() {
        return Err(format!(
            "ingest arm: {} sequence(s) visible after {} append(s)",
            ingest.len(),
            data.len()
        ));
    }
    Ok(Json::Obj(vec![
        (
            "elapsed_ms".to_string(),
            Json::Num(elapsed_nanos as f64 / 1e6),
        ),
        ("appends".to_string(), num(appends as u64)),
        ("seq_len".to_string(), num(len as u64)),
        ("wal_records".to_string(), num(wal_records)),
        ("wal_bytes".to_string(), num(wal_bytes)),
        ("checkpoint_folded".to_string(), num(folded.folded as u64)),
        ("final_epoch".to_string(), num(folded.epoch)),
    ]))
}

struct BuiltEngines {
    st_filter: StFilterSearch,
    tw_sim: TwSimSearch,
    fastmap: FastMapSearch,
    hybrid: HybridSearch,
    resilient: ResilientSearch,
}

impl BuiltEngines {
    fn engine_for(&self, label: &str) -> &dyn SearchEngine<MemPager> {
        match label {
            "naive-scan" => &NaiveScan,
            "lb-scan" => &LbScan,
            "st-filter" => &self.st_filter,
            "tw-sim-search" => &self.tw_sim,
            "fastmap" => &self.fastmap,
            "hybrid" => &self.hybrid,
            _ => &self.resilient,
        }
    }
}

fn build_engines(store: &SequenceStore<MemPager>) -> Result<BuiltEngines, String> {
    let tw_sim = TwSimSearch::build(store).map_err(|e| format!("building tw-sim-search: {e}"))?;
    Ok(BuiltEngines {
        st_filter: StFilterSearch::build(store).map_err(|e| format!("building st-filter: {e}"))?,
        fastmap: FastMapSearch::build(store, 4, DtwKind::MaxAbs, 7)
            .map_err(|e| format!("building fastmap: {e}"))?,
        hybrid: HybridSearch::build(store).map_err(|e| format!("building hybrid: {e}"))?,
        resilient: ResilientSearch::new(tw_sim.clone()),
        tw_sim,
    })
}

fn run_query(
    store: &SequenceStore<MemPager>,
    engines: &BuiltEngines,
    query: &[f64],
    epsilon: f64,
    opts_arms: &[EngineOpts; 2],
    aggs: &mut [[EngineAgg; 2]],
) -> Result<(), String> {
    let mut reference: Option<Vec<u64>> = None;
    for (label, arms) in ENGINES.iter().zip(aggs.iter_mut()) {
        let engine = engines.engine_for(label);
        for (arm, (opts, agg)) in ARMS.iter().zip(opts_arms.iter().zip(arms.iter_mut())) {
            let started = Instant::now();
            let outcome = engine
                .range_search(store, query, epsilon, opts)
                .map_err(|e| format!("{label}/{arm}: query failed: {e}"))?;
            agg.elapsed_nanos += started.elapsed().as_nanos();

            let qs = outcome.query_stats;
            if !qs.accounting_balanced() {
                return Err(format!(
                    "{label}/{arm}: unbalanced pipeline accounting: {qs:?}"
                ));
            }
            let ids = outcome.ids();
            match (&reference, *label) {
                // FastMap is allowed to dismiss true answers; every other
                // engine must agree with the naive scan exactly — with or
                // without the cascade.
                (Some(reference), label) if label != "fastmap" && reference != &ids => {
                    return Err(format!(
                        "{label}/{arm} disagrees with naive-scan (eps {epsilon})"
                    ));
                }
                (None, _) => reference = Some(ids.clone()),
                _ => {}
            }
            agg.stats.merge(&qs);
            agg.rows_seen += outcome.stats.db_size as u64;
            agg.matches += outcome.matches.len() as u64;
        }
    }
    Ok(())
}

fn num(n: u64) -> Json {
    // u64 counters in this harness stay far below 2^53; JSON numbers are
    // doubles, so saturate rather than losing precision silently.
    const MAX_EXACT: u64 = 1 << 53;
    Json::Num(n.min(MAX_EXACT) as f64)
}

/// One cascade arm of one engine, as a JSON object.
fn arm_report(agg: &EngineAgg) -> Json {
    let s = &agg.stats;
    let ratio = if agg.rows_seen == 0 {
        0.0
    } else {
        s.candidates as f64 / agg.rows_seen as f64
    };
    let prune_counts = Json::Obj(vec![
        ("lb_kim".to_string(), num(s.pruned_lb_kim)),
        ("lb_yi".to_string(), num(s.pruned_lb_yi)),
        ("lb_keogh".to_string(), num(s.pruned_lb_keogh)),
        ("lb_improved".to_string(), num(s.pruned_lb_improved)),
        ("embedding".to_string(), num(s.pruned_embedding)),
    ]);
    Json::Obj(vec![
        (
            "elapsed_ms".to_string(),
            Json::Num(agg.elapsed_nanos as f64 / 1e6),
        ),
        ("candidate_ratio".to_string(), Json::Num(ratio)),
        ("dtw_cells".to_string(), num(s.dtw_cells)),
        ("prune_counts".to_string(), prune_counts),
        ("verified".to_string(), num(s.verified)),
        ("abandoned".to_string(), num(s.abandoned)),
        ("matches".to_string(), num(agg.matches)),
    ])
}

fn report(
    config: &BenchConfig,
    commit: &str,
    aggs: &[[EngineAgg; 2]],
    ingest: Json,
    large: Json,
) -> Json {
    let config_obj = Json::Obj(vec![
        ("smoke".to_string(), Json::Bool(config.smoke)),
        ("seed".to_string(), num(config.seed)),
        (
            "corpus_sizes".to_string(),
            Json::Arr(config.corpus_sizes.iter().map(|&n| num(n as u64)).collect()),
        ),
        (
            "seq_lens".to_string(),
            Json::Arr(config.seq_lens.iter().map(|&n| num(n as u64)).collect()),
        ),
        (
            "epsilons".to_string(),
            Json::Arr(config.epsilons.iter().map(|&e| Json::Num(e)).collect()),
        ),
        (
            "queries_per_cell".to_string(),
            num(config.queries_per_cell as u64),
        ),
        ("threads".to_string(), num(config.threads as u64)),
        ("kind".to_string(), Json::Str("max-abs".to_string())),
        (
            // The tier order of the on-arm's cascade; the off-arm runs each
            // engine's legacy filter path untouched.
            "cascade".to_string(),
            Json::Arr(
                BoundTier::ALL
                    .iter()
                    .map(|t| Json::Str(t.name().to_string()))
                    .collect(),
            ),
        ),
    ]);

    let mut per_engine = Vec::with_capacity(ENGINES.len());
    for (label, arms) in ENGINES.iter().zip(aggs) {
        per_engine.push((
            label.to_string(),
            Json::Obj(
                ARMS.iter()
                    .zip(arms)
                    .map(|(arm, agg)| (arm.to_string(), arm_report(agg)))
                    .collect(),
            ),
        ));
    }

    Json::Obj(vec![
        ("schema_version".to_string(), num(SCHEMA_VERSION)),
        ("commit".to_string(), Json::Str(commit.to_string())),
        ("config".to_string(), config_obj),
        ("per_engine".to_string(), Json::Obj(per_engine)),
        ("ingest".to_string(), ingest),
        ("large".to_string(), large),
    ])
}

/// The fields every run must carry, in order — the pinned schema.
pub const TOP_LEVEL_KEYS: [&str; 6] = [
    "schema_version",
    "commit",
    "config",
    "per_engine",
    "ingest",
    "large",
];
pub const CONFIG_KEYS: [&str; 9] = [
    "smoke",
    "seed",
    "corpus_sizes",
    "seq_lens",
    "epsilons",
    "queries_per_cell",
    "threads",
    "kind",
    "cascade",
];
pub const ENGINE_KEYS: [&str; 7] = [
    "elapsed_ms",
    "candidate_ratio",
    "dtw_cells",
    "prune_counts",
    "verified",
    "abandoned",
    "matches",
];
pub const PRUNE_KEYS: [&str; 5] = ["lb_kim", "lb_yi", "lb_keogh", "lb_improved", "embedding"];
pub const INGEST_KEYS: [&str; 7] = [
    "elapsed_ms",
    "appends",
    "seq_len",
    "wal_records",
    "wal_bytes",
    "checkpoint_folded",
    "final_epoch",
];
pub const LARGE_KEYS: [&str; 17] = [
    "ingest_elapsed_ms",
    "query_elapsed_ms",
    "sequences",
    "seq_len",
    "shard_capacity",
    "shards",
    "pool_pages_per_shard",
    "resident_frames",
    "queries",
    "epsilon",
    "matches",
    "candidates",
    "verified",
    "skipped_unverified",
    "dtw_cells",
    "pager_reads",
    "pool_misses",
];

fn check_keys(what: &str, doc: &Json, expected: &[&str]) -> Result<(), String> {
    let keys = doc.keys();
    if keys != expected {
        return Err(format!("{what}: keys {keys:?}, schema pins {expected:?}"));
    }
    Ok(())
}

fn check_num(what: &str, value: Option<&Json>) -> Result<f64, String> {
    let n = value
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: expected a number"))?;
    if !n.is_finite() || n < 0.0 {
        return Err(format!(
            "{what}: expected a finite non-negative number, got {n}"
        ));
    }
    Ok(n)
}

/// Validates a parsed report against the pinned schema: exact key sets in
/// order, `schema_version` match, all seven engines present, every metric a
/// finite non-negative number.
pub fn validate(doc: &Json) -> Result<(), String> {
    check_keys("top level", doc, &TOP_LEVEL_KEYS)?;
    let version = check_num("schema_version", doc.get("schema_version"))?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version}, this tool pins {SCHEMA_VERSION}"
        ));
    }
    doc.get("commit")
        .and_then(Json::as_str)
        .ok_or("commit: expected a string")?;

    let config = doc.get("config").ok_or("missing config")?;
    check_keys("config", config, &CONFIG_KEYS)?;
    for key in ["corpus_sizes", "seq_lens", "epsilons"] {
        let arr = config
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("config.{key}: expected an array"))?;
        if arr.is_empty() {
            return Err(format!("config.{key}: empty matrix axis"));
        }
        for (i, item) in arr.iter().enumerate() {
            check_num(&format!("config.{key}[{i}]"), Some(item))?;
        }
    }
    for key in ["seed", "queries_per_cell", "threads"] {
        check_num(&format!("config.{key}"), config.get(key))?;
    }
    let cascade = config
        .get("cascade")
        .and_then(Json::as_arr)
        .ok_or("config.cascade: expected an array of tier names")?;
    if cascade.is_empty() {
        return Err("config.cascade: empty tier list".to_string());
    }
    for (i, tier) in cascade.iter().enumerate() {
        if tier.as_str().is_none() {
            return Err(format!("config.cascade[{i}]: expected a string"));
        }
    }

    let per_engine = doc.get("per_engine").ok_or("missing per_engine")?;
    check_keys("per_engine", per_engine, &ENGINES)?;
    for label in ENGINES {
        let engine_entry = per_engine
            .get(label)
            .ok_or_else(|| format!("missing engine {label}"))?;
        check_keys(&format!("per_engine.{label}"), engine_entry, &ARMS)?;
        for arm in ARMS {
            let what = format!("per_engine.{label}.{arm}");
            let entry = engine_entry
                .get(arm)
                .ok_or_else(|| format!("{what}: missing arm"))?;
            check_keys(&what, entry, &ENGINE_KEYS)?;
            for key in [
                "elapsed_ms",
                "candidate_ratio",
                "dtw_cells",
                "verified",
                "abandoned",
                "matches",
            ] {
                check_num(&format!("{what}.{key}"), entry.get(key))?;
            }
            let prune = entry
                .get("prune_counts")
                .ok_or_else(|| format!("{what}: missing prune_counts"))?;
            check_keys(&format!("{what}.prune_counts"), prune, &PRUNE_KEYS)?;
            for key in PRUNE_KEYS {
                check_num(&format!("{what}.prune_counts.{key}"), prune.get(key))?;
            }
        }
    }

    let ingest = doc.get("ingest").ok_or("missing ingest")?;
    check_keys("ingest", ingest, &INGEST_KEYS)?;
    for key in INGEST_KEYS {
        check_num(&format!("ingest.{key}"), ingest.get(key))?;
    }
    for key in ["appends", "wal_records", "wal_bytes"] {
        if check_num(&format!("ingest.{key}"), ingest.get(key))? == 0.0 {
            return Err(format!("ingest.{key}: the ingest arm did no work"));
        }
    }

    let large = doc.get("large").ok_or("missing large")?;
    check_keys("large", large, &LARGE_KEYS)?;
    for key in LARGE_KEYS {
        check_num(&format!("large.{key}"), large.get(key))?;
    }
    for key in ["sequences", "shards", "queries"] {
        if check_num(&format!("large.{key}"), large.get(key))? == 0.0 {
            return Err(format!("large.{key}: the large arm did no work"));
        }
    }
    // The arm's reason to exist: the corpus must not fit in the buffer
    // pools. Structural at every scale, including `--smoke`.
    let misses = check_num("large.pool_misses", large.get("pool_misses"))?;
    let resident = check_num("large.resident_frames", large.get("resident_frames"))?;
    if misses <= resident {
        return Err(format!(
            "large.pool_misses {misses} <= large.resident_frames {resident}: \
             the large arm was not out of core"
        ));
    }
    Ok(())
}

/// `git rev-parse HEAD`, or `"unknown"` outside a usable git checkout.
pub fn current_commit(root: &Path) -> String {
    std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn default_out(root: &Path) -> PathBuf {
    root.join("BENCH_search.json")
}

/// `xtask bench [--smoke] [--large] [--seed N] [--out FILE]`.
///
/// `--large` raises the sharded out-of-core arm to ≥1M sequences.
/// Combined with `--smoke` the corpus stays smoke-scaled — CI runs the
/// identical sharded code path without the million-row cost.
pub fn bench_cli(args: &[String], root: &Path) -> Result<(), String> {
    let mut smoke = false;
    let mut large = false;
    let mut seed = 20010402u64; // same master seed as the experiment harness
    let mut out = default_out(root);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--large" => large = true,
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("--seed {v}: {e}"))?;
            }
            "--out" => out = PathBuf::from(iter.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown bench flag {other}")),
        }
    }
    let mut config = if smoke {
        BenchConfig::smoke(seed)
    } else {
        BenchConfig::full(seed)
    };
    if large && !smoke {
        config.large = LargeTier::million();
    }
    let doc = run(&config, &current_commit(root))?;
    validate(&doc)?; // the writer holds itself to the same pin as CI
    let text = doc.to_pretty()?;
    std::fs::write(&out, &text).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} engines, {} run, large arm: {} sequences x {} shards)",
        out.display(),
        ENGINES.len(),
        if smoke { "smoke" } else { "full" },
        config.large.sequences,
        config.large.sequences.div_ceil(config.large.shard_capacity),
    );
    Ok(())
}

/// `xtask validate-bench [FILE]`.
pub fn validate_cli(args: &[String], root: &Path) -> Result<(), String> {
    let path = match args {
        [] => default_out(root),
        [one] => PathBuf::from(one),
        _ => return Err("usage: validate-bench [FILE]".to_string()),
    };
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("{}: schema v{SCHEMA_VERSION} ok", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(doc: &Json, label: &str, arm: &str) -> f64 {
        doc.get("per_engine")
            .and_then(|e| e.get(label))
            .and_then(|e| e.get(arm))
            .and_then(|e| e.get("dtw_cells"))
            .and_then(Json::as_f64)
            .expect("dtw_cells present")
    }

    #[test]
    fn smoke_run_passes_its_own_validation() {
        let config = BenchConfig::smoke(11);
        let doc = run(&config, "testcommit").unwrap();
        validate(&doc).unwrap();
        // Every engine did real work in both arms.
        for label in ENGINES {
            for arm in ARMS {
                assert!(
                    cells(&doc, label, arm) > 0.0,
                    "{label}/{arm} evaluated no DTW cells"
                );
            }
        }
    }

    #[test]
    fn cascade_arm_cuts_dtw_work() {
        // The point of the tiered cascade: the on-arm verifies strictly
        // fewer DP cells on the engines whose off-arm filter it supersedes.
        let doc = run(&BenchConfig::smoke(11), "testcommit").unwrap();
        for label in ["lb-scan", "hybrid", "naive-scan"] {
            let (off, on) = (
                cells(&doc, label, "cascade_off"),
                cells(&doc, label, "cascade_on"),
            );
            assert!(on < off, "{label}: cascade_on {on} >= cascade_off {off}");
        }
    }

    #[test]
    fn ingest_arm_counters_are_deterministic_and_complete() {
        let doc = run(&BenchConfig::smoke(11), "c").unwrap();
        let get = |key: &str| {
            doc.get("ingest")
                .and_then(|i| i.get(key))
                .and_then(Json::as_f64)
                .expect("ingest field present")
        };
        // Every append logs an AppendSequence plus a FeatureUpdate record.
        assert_eq!(get("wal_records"), get("appends") * 2.0);
        assert!(get("wal_bytes") > 0.0);
        assert_eq!(get("checkpoint_folded"), get("appends"));
        // Same seed, same counters (elapsed aside).
        let again = run(&BenchConfig::smoke(11), "c").unwrap();
        assert_eq!(
            doc.get("ingest").and_then(|i| i.get("wal_bytes")),
            again.get("ingest").and_then(|i| i.get("wal_bytes"))
        );
    }

    #[test]
    fn large_arm_is_deterministic_and_out_of_core() {
        let doc = run(&BenchConfig::smoke(11), "c").unwrap();
        let get = |d: &Json, key: &str| {
            d.get("large")
                .and_then(|l| l.get(key))
                .and_then(Json::as_f64)
                .expect("large field present")
        };
        assert_eq!(get(&doc, "sequences"), 400.0);
        assert_eq!(get(&doc, "shards"), 4.0);
        // The corpus outgrows its pools — the point of the arm.
        assert!(get(&doc, "pool_misses") > get(&doc, "resident_frames"));
        // Same seed, same counters (the two elapsed fields aside).
        let again = run(&BenchConfig::smoke(11), "c").unwrap();
        for key in LARGE_KEYS {
            if key.ends_with("elapsed_ms") {
                continue;
            }
            assert_eq!(get(&doc, key), get(&again, key), "large.{key} drifted");
        }
    }

    #[test]
    fn validation_rejects_schema_drift() {
        let doc = run(&BenchConfig::smoke(11), "c").unwrap();
        // Renaming a top-level field breaks the pin.
        let Json::Obj(mut members) = doc.clone() else {
            panic!("report must be an object")
        };
        members[0].0 = "schemaVersion".to_string();
        assert!(validate(&Json::Obj(members)).is_err());
        // Dropping an engine breaks the pin.
        let Json::Obj(mut members) = doc else {
            panic!("report must be an object")
        };
        let Some(Json::Obj(engines)) = members
            .iter_mut()
            .find(|(k, _)| k == "per_engine")
            .map(|(_, v)| v)
        else {
            panic!("per_engine must be an object")
        };
        engines.pop();
        assert!(validate(&Json::Obj(members.clone())).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let root = std::env::temp_dir();
        assert!(bench_cli(&["--bogus".to_string()], &root).is_err());
        assert!(validate_cli(&["a".to_string(), "b".to_string()], &root).is_err());
    }
}
