//! A minimal JSON value type, serializer and parser.
//!
//! The workspace builds `--offline` with no registry access, so `xtask`
//! cannot use serde; `BENCH_search.json` is small and its schema is pinned,
//! which makes a hand-rolled tree both sufficient and easy to validate
//! against (see `bench::validate`). Objects preserve insertion order so the
//! emitted file is byte-stable across runs with equal values.

use std::fmt::Write as _;

/// One JSON value. Numbers are kept as `f64`; the serializer refuses
/// non-finite values (JSON has no encoding for them).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered; keys are not deduplicated (the builder never
    /// repeats one).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in order, or empty for other variants.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> Result<String, String> {
        let mut out = String::new();
        self.write(&mut out, 0)?;
        out.push('\n');
        Ok(out)
    }

    fn write(&self, out: &mut String, indent: usize) -> Result<(), String> {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    return Err(format!("non-finite number {n} has no JSON encoding"));
                }
                // `Display` for f64 is the shortest round-trippable decimal
                // form — deterministic for equal inputs, and valid JSON.
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return Ok(());
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad_in);
                    item.write(out, indent + 1)?;
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return Ok(());
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1)?;
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
        Ok(())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}",
            char::from(what),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        // Surrogates never appear in our own output; map
                        // them to the replacement character rather than
                        // failing the whole parse.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: &[(&str, Json)]) -> Json {
        Json::Obj(
            members
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn round_trips_nested_values() {
        let doc = obj(&[
            ("schema_version", Json::Num(1.0)),
            ("name", Json::Str("bench \"smoke\"\n".to_string())),
            (
                "values",
                Json::Arr(vec![Json::Num(0.25), Json::Bool(false), Json::Null]),
            ),
            ("empty_obj", obj(&[])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty().unwrap();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn serialization_is_deterministic() {
        let doc = obj(&[("a", Json::Num(1.5)), ("b", Json::Num(545.0))]);
        assert_eq!(doc.to_pretty().unwrap(), doc.to_pretty().unwrap());
        assert!(doc.to_pretty().unwrap().contains("\"b\": 545"));
    }

    #[test]
    fn rejects_non_finite_numbers() {
        assert!(Json::Num(f64::NAN).to_pretty().is_err());
        assert!(Json::Num(f64::INFINITY).to_pretty().is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_keys_navigate_objects() {
        let doc = parse(r#"{"config": {"seed": 7}, "arr": [1]}"#).unwrap();
        assert_eq!(doc.keys(), vec!["config", "arr"]);
        let seed = doc.get("config").and_then(|c| c.get("seed")).unwrap();
        assert_eq!(seed.as_f64(), Some(7.0));
        assert_eq!(doc.get("arr").unwrap().as_arr().unwrap().len(), 1);
    }
}
