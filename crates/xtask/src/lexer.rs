//! A hand-rolled Rust lexer: just enough fidelity for lint rules.
//!
//! The analyzer must run `--offline` with no dependencies beyond `std`, so
//! instead of `syn` we tokenize by hand. The lexer understands everything
//! that would otherwise cause false positives in a plain text scan:
//!
//! * line comments (including doc comments — doctest code is *not* library
//!   code and must not trip the panic rules),
//! * nested block comments,
//! * string/char/byte literals with escapes, raw strings `r#"…"#`,
//!   raw identifiers `r#type`,
//! * lifetimes vs. char literals,
//! * float vs. integer literals (the float-safety rules need to know),
//! * multi-character operators (`==`, `!=`, `->`, `::`, …).
//!
//! While lexing it also collects `// tw-allow(rule): reason` suppression
//! directives, which live in comments and are therefore invisible to the
//! token stream.

/// Token kind. Keywords are `Ident`s; rules match on text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Ident,
    Int,
    Float,
    Str,
    Char,
    Lifetime,
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

/// A `// tw-allow(rule, …): reason` directive found in a line comment.
///
/// `standalone` means the comment is the only thing on its line, in which
/// case it suppresses findings on the *next* line; a trailing comment
/// suppresses findings on its own line.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
    pub standalone: bool,
}

/// A `// tw-ledger(kind): body` directive — the in-source accounting
/// manifest the `stats-ledger` symbolic rule checks counters against.
/// `kind` is one of `equation`, `cost`, `gauge`, `timing`, `scope`; the
/// body's grammar is kind-specific and parsed by the symbolic pass.
#[derive(Debug, Clone)]
pub struct Ledger {
    pub line: u32,
    pub kind: String,
    pub body: String,
}

/// The lexed file: tokens plus the suppression and manifest directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    pub ledgers: Vec<Ledger>,
}

/// Tokenizes `source`. Unterminated literals simply end the token at EOF —
/// for a linter, graceful degradation beats erroring out.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_has_code: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            line_has_code: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_has_code = false;
        }
        c
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let standalone = !self.line_has_code;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if let Some(allow) = parse_allow(&text, line, standalone) {
            self.out.allows.push(allow);
        }
        if let Some(ledger) = parse_ledger(&text, line) {
            self.out.ledgers.push(ledger);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.push(Kind::Str, String::new(), line);
    }

    fn raw_string(&mut self) {
        // At `r`/`br` with `"` or `#`s ahead; the caller verified the shape.
        let line = self.line;
        while self.peek(0) != b'"' && self.peek(0) != b'#' && self.pos < self.src.len() {
            self.bump(); // the r / br prefix
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Kind::Str, String::new(), line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a` (lifetime) vs `'a'` (char): a lifetime is a quote followed by
        // an identifier that is *not* closed by another quote.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // quote
            let start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(Kind::Lifetime, text, line);
            return;
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break, // stray quote; don't eat the file
                _ => {
                    self.bump();
                }
            }
        }
        self.push(Kind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // `1.0` and `1.` are floats; `1..` is a range; `1.max()` a call.
            if self.peek(0) == b'.'
                && (self.peek(1).is_ascii_digit()
                    || !(is_ident_start(self.peek(1)) || self.peek(1) == b'.'))
            {
                float = true;
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            if self.peek(0) == b'f' {
                float = true; // f32 / f64 suffix
            }
            while is_ident_continue(self.peek(0)) {
                self.bump(); // type suffix
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = if float { Kind::Float } else { Kind::Int };
        self.push(kind, text, line);
    }

    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        // Raw strings / byte strings / raw identifiers share ident-start
        // prefixes: r" r#" br" b" b' br#" r#ident.
        let (p0, p1, p2) = (self.peek(0), self.peek(1), self.peek(2));
        let raw_str = (p0 == b'r' && (p1 == b'"' || (p1 == b'#' && !is_ident_start(p2))))
            || (p0 == b'b' && p1 == b'r' && (p2 == b'"' || p2 == b'#'));
        if raw_str {
            self.raw_string();
            return;
        }
        if p0 == b'b' && (p1 == b'"' || p1 == b'\'') {
            self.bump(); // b prefix; lex the rest as the plain literal
            if self.peek(0) == b'"' {
                self.string();
            } else {
                self.char_or_lifetime();
            }
            return;
        }
        let start = self.pos;
        if p0 == b'r' && p1 == b'#' {
            self.bump();
            self.bump(); // raw identifier prefix
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
        self.push(Kind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let three = [self.peek(0), self.peek(1), self.peek(2)];
        for cand in [*b"..=", *b"...", *b"<<=", *b">>="] {
            if three == cand {
                for _ in 0..3 {
                    self.bump();
                }
                self.push(
                    Kind::Punct,
                    String::from_utf8_lossy(&cand).into_owned(),
                    line,
                );
                return;
            }
        }
        let two = [self.peek(0), self.peek(1)];
        const TWO: &[&[u8; 2]] = &[
            b"==", b"!=", b"<=", b">=", b"&&", b"||", b"::", b"->", b"=>", b"..", b"+=", b"-=",
            b"*=", b"/=", b"%=", b"^=", b"&=", b"|=", b"<<", b">>",
        ];
        for cand in TWO {
            if two == **cand {
                self.bump();
                self.bump();
                self.push(
                    Kind::Punct,
                    String::from_utf8_lossy(*cand).into_owned(),
                    line,
                );
                return;
            }
        }
        let c = self.bump();
        self.push(Kind::Punct, (c as char).to_string(), line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Parses `tw-allow(rule, …): reason` out of a line comment, if present.
/// A directive with no rules or an empty reason is still returned — the
/// rules pass reports it as `bad-allow` instead of honouring it.
fn parse_allow(comment: &str, line: u32, standalone: bool) -> Option<Allow> {
    let at = comment.find("tw-allow(")?;
    let rest = &comment[at + "tw-allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Allow {
        line,
        rules,
        reason,
        standalone,
    })
}

/// Parses `tw-ledger(kind): body` out of a line comment, if present.
/// Malformed directives (no parens, no `:`) are ignored here; the
/// symbolic pass validates kind names and body grammar and reports
/// `stats-ledger` violations for anything it cannot interpret.
fn parse_ledger(comment: &str, line: u32) -> Option<Ledger> {
    let at = comment.find("tw-ledger(")?;
    let rest = &comment[at + "tw-ledger(".len()..];
    let close = rest.find(')')?;
    let kind = rest[..close].trim().to_string();
    let body = rest[close + 1..].strip_prefix(':')?.trim().to_string();
    Some(Ledger { line, kind, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let lx = lex("// x.unwrap()\n/* panic!() /* nested */ */\nlet s = \"unwrap()\";");
        let idents: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let x = r#"quote " inside"#; r#type"##);
        assert!(toks.contains(&(Kind::Str, String::new())));
        assert!(toks.contains(&(Kind::Ident, "type".into())));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("1.0 2 3.5f64 4f32 1..n 7e3 0x1f");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "3.5f64", "4f32", "7e3"]);
        assert!(toks.contains(&(Kind::Punct, "..".into())));
        assert!(toks.contains(&(Kind::Int, "0x1f".into())));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
    }

    #[test]
    fn multi_char_ops() {
        let toks = kinds("a == b != c -> d :: e ..= f");
        for op in ["==", "!=", "->", "::", "..="] {
            assert!(toks.contains(&(Kind::Punct, op.into())), "{op}");
        }
    }

    #[test]
    fn ledger_directive_parsed() {
        let lx = lex(
            "// tw-ledger(equation): candidates = verified + abandoned\n\
             // tw-ledger(scope): QueryStats\n\
             // tw-ledger without parens is not a directive\n",
        );
        assert_eq!(lx.ledgers.len(), 2);
        assert_eq!(lx.ledgers[0].kind, "equation");
        assert_eq!(lx.ledgers[0].body, "candidates = verified + abandoned");
        assert_eq!(lx.ledgers[1].kind, "scope");
        assert_eq!(lx.ledgers[1].line, 2);
    }

    #[test]
    fn allow_directive_parsed() {
        let lx =
            lex("x(); // tw-allow(unwrap, panic): mutex can't be poisoned\n// tw-allow(cast)\n");
        assert_eq!(lx.allows.len(), 2);
        assert_eq!(lx.allows[0].rules, ["unwrap", "panic"]);
        assert!(!lx.allows[0].standalone);
        assert!(lx.allows[0].reason.contains("poisoned"));
        assert!(lx.allows[1].standalone);
        assert!(lx.allows[1].reason.is_empty());
    }
}
