//! # xtask — `tw-analyze`, the workspace's static-analysis pass
//!
//! A dependency-free (std-only, works `--offline`) analyzer that enforces
//! the project lints clippy cannot express: panic-freedom in library code,
//! NaN-total float comparisons on the DTW paths, on-disk-format cast and
//! endianness hygiene, and `source()`-preserving error construction. See
//! DESIGN.md "Static analysis & lint policy" for the rule catalog and
//! `// tw-allow(rule): reason` suppression etiquette.
//!
//! Run it as `cargo run -p xtask -- analyze`; CI (`scripts/check.sh`) runs
//! it between clippy and the tests and fails on any violation not covered
//! by the committed `analyze-baseline.toml` ratchet.

pub mod baseline;
pub mod bench;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use baseline::{Baseline, Comparison};
use rules::Violation;

/// Everything one analysis run produced.
#[derive(Debug)]
pub struct Report {
    pub root: PathBuf,
    /// All findings, including suppressed ones (reports distinguish them).
    pub violations: Vec<Violation>,
    /// Active (non-suppressed) counts per `(file, rule)` — the ratchet input.
    pub counts: BTreeMap<(String, String), u64>,
    pub files_analyzed: usize,
}

impl Report {
    pub fn active(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    pub fn suppressed_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.suppressed.is_some())
            .count()
    }

    /// Checks the run against a baseline file.
    pub fn compare(&self, baseline_path: &Path) -> io::Result<Comparison> {
        let base = Baseline::load(baseline_path)?;
        Ok(baseline::compare(&self.counts, &base))
    }

    /// The baseline that would make this run pass exactly.
    pub fn as_baseline(&self) -> Baseline {
        Baseline {
            entries: self.counts.clone(),
        }
    }
}

/// Analyzes every library-crate source file under `root`.
pub fn run(root: &Path) -> io::Result<Report> {
    let files = walk::collect(root)?;
    let mut violations = Vec::new();
    let files_analyzed = files.len();
    for file in &files {
        let source = std::fs::read_to_string(&file.abs)?;
        violations.extend(rules::analyze_source(&file.rel, &source, file.class));
    }
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for v in violations.iter().filter(|v| v.suppressed.is_none()) {
        *counts
            .entry((v.file.clone(), v.rule.to_string()))
            .or_insert(0) += 1;
    }
    Ok(Report {
        root: root.to_path_buf(),
        violations,
        counts,
        files_analyzed,
    })
}
