//! # xtask — `tw-analyze`, the workspace's static-analysis pass
//!
//! A dependency-free (std-only, works `--offline`) analyzer that enforces
//! the project lints clippy cannot express, in two layers:
//!
//! * the **lexical** pass ([`rules`]) checks token windows per file —
//!   panic-freedom in library code, NaN-total float comparisons on the DTW
//!   paths, on-disk-format cast and endianness hygiene,
//!   `source()`-preserving error construction, clock discipline;
//! * the **symbolic** pass ([`model`] + [`symbolic`]) builds a brace-aware
//!   item model of every file and checks cross-statement, cross-file
//!   invariants — the global lock-acquisition graph (`lock-order`,
//!   `lock-blocking`), governor coverage of budget-charging loops
//!   (`cancel-coverage`), and the §10 accounting manifest (`stats-ledger`).
//!
//! See DESIGN.md "Static analysis & lint policy" for the rule catalog and
//! `// tw-allow(rule): reason` suppression etiquette.
//!
//! Run it as `cargo run -p xtask -- analyze`; CI (`scripts/check.sh`) runs
//! it between clippy and the tests and fails on any violation not covered
//! by the committed `analyze-baseline.toml` ratchet.

pub mod baseline;
pub mod bench;
pub mod json;
pub mod lexer;
pub mod loadtest;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod symbolic;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use baseline::{Baseline, Comparison};
use rules::{FileClass, Violation};

/// One in-memory source scheduled for analysis (fixture tests build these
/// directly; [`run`] reads them from disk).
#[derive(Debug, Clone)]
pub struct Source {
    /// Path label used in reports and as the baseline key.
    pub rel: String,
    pub text: String,
    pub class: FileClass,
}

/// Everything one analysis run produced.
#[derive(Debug)]
pub struct Report {
    pub root: PathBuf,
    /// All findings, including suppressed ones (reports distinguish them).
    pub violations: Vec<Violation>,
    /// Active (non-suppressed) counts per `(file, rule)` — the ratchet input.
    pub counts: BTreeMap<(String, String), u64>,
    pub files_analyzed: usize,
    /// Wall time per analyzer pass, in execution order.
    pub timings: Vec<(&'static str, Duration)>,
}

impl Report {
    pub fn active(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    pub fn suppressed_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.suppressed.is_some())
            .count()
    }

    /// Checks the run against a baseline file.
    pub fn compare(&self, baseline_path: &Path) -> io::Result<Comparison> {
        let base = Baseline::load(baseline_path)?;
        Ok(baseline::compare(&self.counts, &base))
    }

    /// The baseline that would make this run pass exactly.
    pub fn as_baseline(&self) -> Baseline {
        Baseline {
            entries: self.counts.clone(),
        }
    }
}

/// Analyzes every library-crate source file under `root`.
pub fn run(root: &Path) -> io::Result<Report> {
    let files = walk::collect(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        sources.push(Source {
            rel: file.rel.clone(),
            text: std::fs::read_to_string(&file.abs)?,
            class: file.class,
        });
    }
    Ok(run_sources(root, &sources))
}

/// Runs both analyzer layers over a set of sources. This is the whole
/// pipeline behind `analyze`; fixture and mutation tests call it with
/// synthetic or edited sources to exercise the symbolic rules end to end.
pub fn run_sources(root: &Path, sources: &[Source]) -> Report {
    let mut timings = Vec::new();

    // Pass 1: lex once per file, run the lexical rules.
    let t = Instant::now();
    let lexed: Vec<lexer::Lexed> = sources.iter().map(|s| lexer::lex(&s.text)).collect();
    let mut raw: Vec<Vec<(u32, &'static str, String)>> = lexed
        .iter()
        .zip(sources)
        .map(|(lx, s)| rules::scan_lexical(lx, s.class))
        .collect();
    timings.push(("lex+lexical", t.elapsed()));

    // Pass 2: build the symbolic item model on the same token streams.
    let t = Instant::now();
    let models: Vec<model::FileModel> = lexed
        .iter()
        .zip(sources)
        .map(|(lx, s)| model::build(&s.rel, lx, s.class))
        .collect();
    timings.push(("model", t.elapsed()));

    // Pass 3: the cross-file rule families.
    let (findings, sym_timings) = symbolic::analyze(&models);
    timings.extend(sym_timings);
    let by_rel: BTreeMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| (s.rel.as_str(), i))
        .collect();
    for f in findings {
        if let Some(&i) = by_rel.get(f.file.as_str()) {
            raw[i].push((f.line, f.rule, f.message));
        }
    }

    // Suppression runs last so a tw-allow covers lexical and symbolic
    // findings alike.
    let mut violations = Vec::new();
    for (i, s) in sources.iter().enumerate() {
        violations.extend(rules::apply_allows(
            &s.rel,
            std::mem::take(&mut raw[i]),
            &lexed[i],
        ));
    }
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for v in violations.iter().filter(|v| v.suppressed.is_none()) {
        *counts
            .entry((v.file.clone(), v.rule.to_string()))
            .or_insert(0) += 1;
    }
    Report {
        root: root.to_path_buf(),
        violations,
        counts,
        files_analyzed: sources.len(),
        timings,
    }
}
