//! `xtask loadtest` — concurrent-client load harness for the tw-net server.
//!
//! Ingests a seeded sharded corpus into a scratch directory, serves it
//! through an in-process [`tw_net::Server`] with deliberately tight
//! per-tenant QoS, and drives N client threads through a seeded request
//! mix (range + kNN, with a slice of cell-capped requests that must come
//! back as honest partial results). The harness writes one JSON report —
//! latency percentiles, shed rate, partial-result rate, and the server's
//! full frame ledger — and, under `--smoke`, asserts the run was clean:
//! zero transport errors, zero server errors, and both accounting ledgers
//! balanced.
//!
//! ```text
//! cargo run -p xtask -- loadtest --smoke       # CI gate (8 clients)
//! cargo run -p xtask -- loadtest               # full run (16 clients)
//! cargo run -p xtask -- loadtest --clients 32 --requests 50 --out FILE
//! ```
//!
//! Latency numbers vary run to run; everything the smoke gate *asserts*
//! (error counts, ledger balance) is load-independent.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tw_core::distance::DtwKind;
use tw_core::search::{CorpusSharder, EngineOpts, ShardedSearch};
use tw_core::{QueryBudget, Termination, TwError};
use tw_net::{
    Client, ClientConfig, QueryKind, QueryRequest, QueryService, Reply, Server, ServerConfig,
    ServiceOutcome, TenantQos, WireBudget,
};
use tw_storage::SegmentPager;
use tw_workload::{generate_random_walks, RandomWalkConfig};

use crate::json::Json;

/// Bump when a report field is added, removed or renamed.
pub const SCHEMA_VERSION: u64 = 1;

/// Harness knobs. [`LoadtestConfig::smoke`] is the CI shape; the default
/// is a heavier local run.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues before disconnecting.
    pub requests_per_client: usize,
    /// Corpus size (sequences).
    pub sequences: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Sequences per shard segment.
    pub shard_capacity: usize,
    /// Buffer-pool pages per shard on reopen.
    pub pool_pages: usize,
    /// Range-query tolerance.
    pub epsilon: f64,
    /// Workload seed; the corpus and every request are functions of it.
    pub seed: u64,
    /// Per-tenant admission QoS the server enforces.
    pub qos: TenantQos,
}

impl LoadtestConfig {
    /// The CI shape: 8 clients over a small corpus, QoS roomy enough
    /// that a clean run sees no involuntary drops.
    pub fn smoke() -> Self {
        Self {
            clients: 8,
            requests_per_client: 9,
            sequences: 96,
            seq_len: 64,
            shard_capacity: 48,
            pool_pages: 8,
            epsilon: 2.0,
            seed: 42,
            qos: TenantQos {
                max_concurrent: 4,
                max_queued: 16,
            },
        }
    }

    /// The default local run: more clients than admission slots, so the
    /// shed path is exercised for real.
    pub fn full() -> Self {
        Self {
            clients: 16,
            requests_per_client: 25,
            sequences: 512,
            seq_len: 64,
            shard_capacity: 128,
            pool_pages: 8,
            epsilon: 2.0,
            seed: 42,
            qos: TenantQos {
                max_concurrent: 2,
                max_queued: 2,
            },
        }
    }
}

/// The sharded corpus behind the wire: range and kNN fan-outs with the
/// budget the frame carried.
struct ShardedService {
    sharded: ShardedSearch<SegmentPager>,
}

impl QueryService for ShardedService {
    fn execute(
        &self,
        request: &QueryRequest,
        budget: QueryBudget,
    ) -> Result<ServiceOutcome, TwError> {
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs).budget(budget);
        match request.kind {
            QueryKind::Range { epsilon } => self
                .sharded
                .range_search_sharded(&request.values, epsilon, &opts)
                .map(|o| o.merged.into()),
            QueryKind::Knn { k } => self
                .sharded
                .knn_sharded(
                    &request.values,
                    usize::try_from(k).unwrap_or(usize::MAX),
                    &opts,
                )
                .map(|o| o.merged.into()),
        }
    }
}

/// What one client thread saw.
#[derive(Debug, Default)]
struct ClientTally {
    ok_full: u64,
    ok_partial: u64,
    shed: u64,
    server_errors: u64,
    transport_errors: u64,
    latencies: Vec<Duration>,
}

/// Runs the harness and returns the JSON report. Everything lives in a
/// scratch directory under the system temp dir and is removed on the way
/// out.
pub fn run(config: &LoadtestConfig) -> Result<Json, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tw-loadtest-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    let report = run_in(config, &dir);
    std::fs::remove_dir_all(&dir).ok();
    report
}

fn run_in(config: &LoadtestConfig, dir: &Path) -> Result<Json, String> {
    // Corpus: seeded random walks sharded onto disk, reopened through
    // small pools — the same out-of-core shape the large bench arm uses.
    let walks = generate_random_walks(
        &RandomWalkConfig::paper(config.sequences, config.seq_len),
        config.seed ^ 0x4C4F_4144,
    );
    let mut sharder = CorpusSharder::create(dir, config.shard_capacity)
        .map_err(|e| format!("loadtest: creating sharder: {e}"))?
        .sidecars(false);
    for s in &walks {
        sharder
            .append(s)
            .map_err(|e| format!("loadtest: append: {e}"))?;
    }
    sharder
        .finish()
        .map_err(|e| format!("loadtest: committing manifest: {e}"))?;
    let (sharded, reports) = ShardedSearch::open_dir(dir, config.pool_pages)
        .map_err(|e| format!("loadtest: opening corpus: {e}"))?;
    if reports.iter().any(|r| !r.is_clean()) {
        return Err("loadtest: freshly committed corpus needed recovery".to_string());
    }

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(ShardedService { sharded }),
        ServerConfig {
            default_qos: config.qos,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("loadtest: binding server: {e}"))?;
    let addr = server.local_addr().to_string();

    // Clients: each issues a seeded mix — mostly range, every 4th a kNN,
    // every 3rd carrying a tiny cell cap so the deadline/budget path is
    // exercised and honest partial results come back over the wire.
    let queries = generate_random_walks(
        &RandomWalkConfig::paper(config.clients, config.seq_len),
        config.seed ^ 0x51_5259,
    );
    let epsilon = config.epsilon;
    let per_client = config.requests_per_client;
    let mut tally = ClientTally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.clients);
        for (index, query) in queries.iter().enumerate() {
            let addr = addr.clone();
            handles
                .push(scope.spawn(move || drive_client(&addr, query, epsilon, per_client, index)));
        }
        for handle in handles {
            match handle.join() {
                Ok(t) => {
                    tally.ok_full += t.ok_full;
                    tally.ok_partial += t.ok_partial;
                    tally.shed += t.shed;
                    tally.server_errors += t.server_errors;
                    tally.transport_errors += t.transport_errors;
                    tally.latencies.extend(t.latencies);
                }
                Err(_) => tally.transport_errors += per_client as u64,
            }
        }
    });

    let drain = server.drain();
    let requests = (config.clients * per_client) as u64;
    let answered = tally.ok_full
        + tally.ok_partial
        + tally.shed
        + tally.server_errors
        + tally.transport_errors;
    if answered != requests {
        return Err(format!(
            "loadtest: {requests} request(s) issued but {answered} accounted for"
        ));
    }

    tally.latencies.sort_unstable();
    let rate = |n: u64| {
        if requests == 0 {
            0.0
        } else {
            n as f64 / requests as f64
        }
    };
    let server_obj = Json::Obj(vec![
        ("frames_read".into(), num(drain.server.frames_read)),
        ("responses_sent".into(), num(drain.server.responses_sent)),
        ("frames_shed".into(), num(drain.server.frames_shed)),
        ("error_replies".into(), num(drain.server.error_replies)),
        (
            "slow_client_drops".into(),
            num(drain.server.slow_client_drops),
        ),
        ("io_drops".into(), num(drain.server.io_drops)),
        ("bad_frames".into(), num(drain.server.bad_frames)),
        ("handler_panics".into(), num(drain.server.handler_panics)),
        (
            "connections_accepted".into(),
            num(drain.server.connections_accepted),
        ),
        (
            "connections_closed".into(),
            num(drain.server.connections_closed),
        ),
        (
            "ledger_balanced".into(),
            Json::Bool(drain.server.ledger_balanced()),
        ),
    ]);
    Ok(Json::Obj(vec![
        ("schema_version".into(), num(SCHEMA_VERSION)),
        ("seed".into(), num(config.seed)),
        ("clients".into(), num(config.clients as u64)),
        ("requests".into(), num(requests)),
        ("ok_full".into(), num(tally.ok_full)),
        ("ok_partial".into(), num(tally.ok_partial)),
        ("shed".into(), num(tally.shed)),
        ("server_errors".into(), num(tally.server_errors)),
        ("transport_errors".into(), num(tally.transport_errors)),
        ("shed_rate".into(), Json::Num(rate(tally.shed))),
        ("partial_rate".into(), Json::Num(rate(tally.ok_partial))),
        (
            "latency_ms".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(percentile(&tally.latencies, 0.50))),
                ("p95".into(), Json::Num(percentile(&tally.latencies, 0.95))),
                ("p99".into(), Json::Num(percentile(&tally.latencies, 0.99))),
                ("max".into(), Json::Num(percentile(&tally.latencies, 1.0))),
            ]),
        ),
        ("server".into(), server_obj),
        (
            "aggregate_stats_balanced".into(),
            Json::Bool(drain.aggregate.accounting_balanced()),
        ),
    ]))
}

/// One client connection's request loop.
fn drive_client(
    addr: &str,
    query: &[f64],
    epsilon: f64,
    requests: usize,
    index: usize,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let clock: Arc<dyn tw_core::Clock> = Arc::new(tw_core::SystemClock::new());
    let mut client = match Client::connect(addr, Arc::clone(&clock), ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors = requests as u64;
            return tally;
        }
    };
    for request_index in 0..requests {
        let kind = if (index + request_index) % 4 == 3 {
            QueryKind::Knn { k: 3 }
        } else {
            QueryKind::Range { epsilon }
        };
        // Every 3rd request is cell-capped: it must come back as a typed
        // partial result, never an error.
        let budget = if request_index % 3 == 2 {
            WireBudget {
                max_cells: 50,
                ..WireBudget::default()
            }
        } else {
            WireBudget {
                deadline_ms: 30_000,
                ..WireBudget::default()
            }
        };
        let request = QueryRequest {
            tenant: 0,
            budget,
            kind,
            values: query.to_vec(),
        };
        let started = Instant::now();
        match client.call(&request) {
            Ok(Reply::Outcome(resp)) => {
                tally.latencies.push(started.elapsed());
                if matches!(resp.termination, Termination::Complete) {
                    tally.ok_full += 1;
                } else {
                    tally.ok_partial += 1;
                }
            }
            Ok(Reply::Shed(shed)) => {
                tally.latencies.push(started.elapsed());
                tally.shed += 1;
                std::thread::sleep(Duration::from_millis(shed.retry_after_ms.min(200)));
            }
            Ok(Reply::Error(_)) => {
                tally.latencies.push(started.elapsed());
                tally.server_errors += 1;
            }
            Err(_) => {
                // The connection is poisoned; bill the rest of the loop
                // to transport and stop.
                tally.transport_errors += (requests - request_index) as u64;
                break;
            }
        }
    }
    tally
}

/// Nearest-rank percentile over a sorted latency list, in milliseconds.
fn percentile(sorted: &[Duration], p: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        n => {
            let rank = ((n as f64 - 1.0) * p).round() as usize;
            sorted[rank.min(n - 1)].as_secs_f64() * 1000.0
        }
    }
}

fn num(n: u64) -> Json {
    const MAX_SAFE: u64 = (1 << 53) - 1;
    Json::Num(n.min(MAX_SAFE) as f64)
}

/// Flag grammar: `loadtest [--smoke] [--clients N] [--requests N]
/// [--seed N] [--out FILE]`.
pub fn loadtest_cli(args: &[String], root: &Path) -> Result<(), String> {
    let mut smoke = false;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--clients" => {
                let v = it.next().ok_or("loadtest: --clients needs a value")?;
                clients = Some(
                    v.parse()
                        .map_err(|_| format!("loadtest: bad --clients {v}"))?,
                );
            }
            "--requests" => {
                let v = it.next().ok_or("loadtest: --requests needs a value")?;
                requests = Some(
                    v.parse()
                        .map_err(|_| format!("loadtest: bad --requests {v}"))?,
                );
            }
            "--seed" => {
                let v = it.next().ok_or("loadtest: --seed needs a value")?;
                seed = Some(v.parse().map_err(|_| format!("loadtest: bad --seed {v}"))?);
            }
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().ok_or("loadtest: --out needs a value")?,
                ))
            }
            other => return Err(format!("loadtest: unknown flag {other}")),
        }
    }
    let mut config = if smoke {
        LoadtestConfig::smoke()
    } else {
        LoadtestConfig::full()
    };
    if let Some(n) = clients {
        config.clients = n.max(1);
    }
    if let Some(n) = requests {
        config.requests_per_client = n.max(1);
    }
    if let Some(s) = seed {
        config.seed = s;
    }
    let report = run(&config)?;

    let out = out.unwrap_or_else(|| root.join("target").join("loadtest.json"));
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("loadtest: creating {}: {e}", parent.display()))?;
    }
    let text = report
        .to_pretty()
        .map_err(|e| format!("loadtest: serializing report: {e}"))?;
    std::fs::write(&out, text).map_err(|e| format!("loadtest: writing {}: {e}", out.display()))?;

    let get_num = |path: &[&str]| -> f64 {
        let mut node = &report;
        for key in path {
            node = node.get(key).unwrap_or(&Json::Null);
        }
        node.as_f64().unwrap_or(f64::NAN)
    };
    let get_bool = |path: &[&str]| -> bool {
        let mut node = &report;
        for key in path {
            node = node.get(key).unwrap_or(&Json::Null);
        }
        matches!(node, Json::Bool(true))
    };
    println!(
        "loadtest: {} client(s) x {} request(s): p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms; \
         shed rate {:.1}%, partial rate {:.1}%",
        config.clients,
        config.requests_per_client,
        get_num(&["latency_ms", "p50"]),
        get_num(&["latency_ms", "p95"]),
        get_num(&["latency_ms", "p99"]),
        get_num(&["shed_rate"]) * 100.0,
        get_num(&["partial_rate"]) * 100.0,
    );
    println!("loadtest: report written to {}", out.display());

    if smoke {
        // The CI gate: a clean seeded run has no protocol-level failures
        // and both accounting ledgers reconcile exactly.
        let mut failures = Vec::new();
        let zero_counters: [(&str, &[&str]); 4] = [
            ("transport_errors", &["transport_errors"]),
            ("server_errors", &["server_errors"]),
            ("server.bad_frames", &["server", "bad_frames"]),
            ("server.handler_panics", &["server", "handler_panics"]),
        ];
        for (name, path) in zero_counters {
            let value = get_num(path);
            if value != 0.0 {
                failures.push(format!("{name} = {value}"));
            }
        }
        if !get_bool(&["server", "ledger_balanced"]) {
            failures.push("server frame ledger does not balance".to_string());
        }
        if !get_bool(&["aggregate_stats_balanced"]) {
            failures.push("aggregate QueryStats ledger does not balance".to_string());
        }
        if get_num(&["ok_partial"]) == 0.0 {
            failures.push("no cell-capped request produced a partial result".to_string());
        }
        if !failures.is_empty() {
            return Err(format!("loadtest --smoke: {}", failures.join("; ")));
        }
        println!("loadtest: smoke gate clean (zero protocol errors, ledgers balanced)");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_clean_and_ledger_balanced() {
        let config = LoadtestConfig {
            clients: 2,
            requests_per_client: 6,
            sequences: 32,
            seq_len: 32,
            shard_capacity: 16,
            pool_pages: 4,
            epsilon: 2.0,
            seed: 7,
            qos: TenantQos {
                max_concurrent: 2,
                max_queued: 8,
            },
        };
        let report = run(&config).expect("tiny loadtest");
        let requests = report.get("requests").and_then(Json::as_f64).unwrap();
        assert_eq!(requests, 12.0);
        let errors = report
            .get("transport_errors")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(errors, 0.0, "transport must be clean on loopback");
        assert!(matches!(
            report.get("server").and_then(|s| s.get("ledger_balanced")),
            Some(Json::Bool(true))
        ));
        assert!(matches!(
            report.get("aggregate_stats_balanced"),
            Some(Json::Bool(true))
        ));
        // Every 3rd request is cell-capped at 50 DTW cells — far below a
        // 32-sequence corpus's need — so partials must appear.
        let partial = report.get("ok_partial").and_then(Json::as_f64).unwrap();
        assert!(partial > 0.0, "cell-capped requests must yield partials");
        let p99 = report
            .get("latency_ms")
            .and_then(|l| l.get("p99"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(p99 >= 0.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&lat, 0.0), 1.0);
        assert_eq!(percentile(&lat, 1.0), 100.0);
        let p50 = percentile(&lat, 0.50);
        assert!((50.0..=51.0).contains(&p50), "{p50}");
    }
}
