//! Workspace tooling CLI — static analysis and the bench harness.
//!
//! ```text
//! cargo run -p xtask -- analyze                 # check against the ratchet
//! cargo run -p xtask -- analyze --fix-baseline  # rewrite analyze-baseline.toml
//! cargo run -p xtask -- analyze --list          # print every finding
//! cargo run -p xtask -- analyze --format=sarif  # SARIF 2.1.0 on stdout
//! cargo run -p xtask -- analyze --format=github # workflow-command annotations
//! cargo run -p xtask -- analyze --timings       # per-pass wall times
//! cargo run -p xtask -- rules                   # rule catalog
//! cargo run -p xtask -- bench --smoke           # write BENCH_search.json
//! cargo run -p xtask -- validate-bench [FILE]   # schema-pin check
//! cargo run -p xtask -- loadtest --smoke        # net-server load gate
//! ```
//!
//! Exit codes: 0 clean (vs. baseline), 1 new violations or a stale
//! baseline, 2 usage/IO error. With `--format=sarif` the report goes to
//! stdout and the human summary to stderr, so redirection stays clean.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{family_of, RULES};
use xtask::{baseline, baseline::Baseline, walk};

const BASELINE_FILE: &str = "analyze-baseline.toml";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Sarif,
    Github,
}

struct Opts {
    command: String,
    fix_baseline: bool,
    list: bool,
    timings: bool,
    format: Format,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tw-analyze <analyze|rules> [--fix-baseline] [--list] [--timings] \
         [--format=text|sarif|github] [--root DIR] [--baseline FILE]\n       \
         tw-analyze bench [--smoke] [--large] [--seed N] [--out FILE]\n       \
         tw-analyze validate-bench [FILE]\n       \
         tw-analyze loadtest [--smoke] [--clients N] [--requests N] [--seed N] [--out FILE]"
    );
    ExitCode::from(2)
}

/// Dispatches the bench and loadtest subcommands, which have their own
/// flag grammars.
fn bench_command(command: &str, args: &[String]) -> ExitCode {
    let root = match walk::find_root(None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "bench" => xtask::bench::bench_cli(args, &root),
        "loadtest" => xtask::loadtest::loadtest_cli(args, &root),
        _ => xtask::bench::validate_cli(args, &root),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tw-analyze: {command}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts {
        command: String::new(),
        fix_baseline: false,
        list: false,
        timings: false,
        format: Format::Text,
        root: None,
        baseline: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-baseline" => opts.fix_baseline = true,
            "--list" => opts.list = true,
            "--timings" => opts.timings = true,
            "--root" => opts.root = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--format" => opts.format = parse_format(&args.next().ok_or_else(usage)?)?,
            other if other.starts_with("--format=") => {
                opts.format = parse_format(&other["--format=".len()..])?;
            }
            cmd if opts.command.is_empty() && !cmd.starts_with('-') => {
                opts.command = cmd.to_string();
            }
            _ => return Err(usage()),
        }
    }
    if opts.command.is_empty() {
        opts.command = "analyze".to_string();
    }
    Ok(opts)
}

fn parse_format(name: &str) -> Result<Format, ExitCode> {
    match name {
        "text" => Ok(Format::Text),
        "sarif" => Ok(Format::Sarif),
        "github" => Ok(Format::Github),
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(command @ ("bench" | "validate-bench" | "loadtest")) =
        argv.first().map(String::as_str)
    {
        return bench_command(command, &argv[1..]);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    match opts.command.as_str() {
        "rules" => {
            println!("{:<16} {:<17} description", "rule", "family");
            for (name, family, desc) in RULES {
                println!("{name:<16} {family:<17} {desc}");
            }
            ExitCode::SUCCESS
        }
        "analyze" => analyze(&opts),
        _ => usage(),
    }
}

fn analyze(opts: &Opts) -> ExitCode {
    let root = match walk::find_root(opts.root.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));

    if opts.fix_baseline {
        if let Err(e) = report.as_baseline().save(&baseline_path) {
            eprintln!("tw-analyze: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} entries, {} active violations across {} files)",
            baseline_path.display(),
            report.counts.len(),
            report.active().count(),
            report.files_analyzed,
        );
        return ExitCode::SUCCESS;
    }

    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("tw-analyze: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    // A baseline naming files or rules that no longer exist misstates the
    // debt; fail until it is pruned.
    let stale = base.stale_entries(&root);
    if !stale.is_empty() {
        eprintln!(
            "tw-analyze: stale baseline entries in {}:",
            baseline_path.display()
        );
        for (file, rule, why) in &stale {
            eprintln!("  {file} [{rule}]: {why}");
        }
        eprintln!("run with --fix-baseline to prune them.");
        return ExitCode::FAILURE;
    }

    let cmp = baseline::compare(&report.counts, &base);

    if opts.format == Format::Sarif {
        let sarif = xtask::sarif::to_sarif(&report, Some(&cmp));
        match sarif.to_pretty() {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("tw-analyze: sarif: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.format == Format::Github {
        emit_github_annotations(&report, &cmp);
    }

    if opts.list && opts.format == Format::Text {
        for v in &report.violations {
            match &v.suppressed {
                Some(reason) => println!(
                    "{}:{}: [{}] suppressed: {} (tw-allow: {reason})",
                    v.file, v.line, v.rule, v.message
                ),
                None => println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message),
            }
        }
    }

    // Per-family summary of active violations (stderr under the machine
    // formats so stdout stays parseable).
    let mut by_family: BTreeMap<&str, u64> = BTreeMap::new();
    for v in report.active() {
        *by_family.entry(family_of(v.rule)).or_insert(0) += 1;
    }
    let human = |line: String| {
        if opts.format == Format::Text {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    };
    human(format!(
        "tw-analyze: {} files, {} active violations ({} suppressed by tw-allow)",
        report.files_analyzed,
        report.active().count(),
        report.suppressed_count(),
    ));
    for (family, n) in &by_family {
        human(format!("  {family:<17} {n}"));
    }
    if opts.timings || opts.format == Format::Text {
        for (pass, took) in &report.timings {
            human(format!("  pass {pass:<17} {:>8.2?}", took));
        }
    }

    if !cmp.improvements.is_empty() {
        human("ratchet can tighten (run with --fix-baseline to lock in):".into());
        for (file, rule, now, base) in &cmp.improvements {
            human(format!("  {file} [{rule}] {base} -> {now}"));
        }
    }

    if cmp.is_regression() {
        eprintln!("tw-analyze: NEW violations over the committed baseline:");
        for (file, rule, now, base) in &cmp.regressions {
            eprintln!("  {file} [{rule}] baseline {base}, now {now}:");
            for v in report
                .active()
                .filter(|v| v.file == *file && v.rule == *rule)
            {
                eprintln!("    {}:{}: {}", v.file, v.line, v.message);
            }
        }
        eprintln!(
            "fix the new violations, add `// tw-allow(rule): reason` with justification,\n\
             or (for intentional debt) rerun with --fix-baseline and commit the result."
        );
        return ExitCode::FAILURE;
    }
    let baselined: u64 = base.entries.values().sum();
    human(format!("clean vs. baseline ({baselined} grandfathered)"));
    ExitCode::SUCCESS
}

/// GitHub Actions workflow commands: one annotation per active finding,
/// `error` for ratchet regressions, `warning` for grandfathered debt.
fn emit_github_annotations(report: &xtask::Report, cmp: &baseline::Comparison) {
    use std::collections::BTreeSet;
    let regressed: BTreeSet<(&str, &str)> = cmp
        .regressions
        .iter()
        .map(|(file, rule, _, _)| (file.as_str(), rule.as_str()))
        .collect();
    for v in report.active() {
        let kind = if regressed.contains(&(v.file.as_str(), v.rule)) {
            "error"
        } else {
            "warning"
        };
        println!(
            "::{kind} file={},line={},title=tw-analyze {}::{}",
            v.file, v.line, v.rule, v.message
        );
    }
}
