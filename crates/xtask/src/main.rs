//! Workspace tooling CLI — static analysis and the bench harness.
//!
//! ```text
//! cargo run -p xtask -- analyze                 # check against the ratchet
//! cargo run -p xtask -- analyze --fix-baseline  # rewrite analyze-baseline.toml
//! cargo run -p xtask -- analyze --list          # print every finding
//! cargo run -p xtask -- rules                   # rule catalog
//! cargo run -p xtask -- bench --smoke           # write BENCH_search.json
//! cargo run -p xtask -- validate-bench [FILE]   # schema-pin check
//! ```
//!
//! Exit codes: 0 clean (vs. baseline), 1 new violations, 2 usage/IO error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{family_of, RULES};
use xtask::{baseline::Baseline, walk};

const BASELINE_FILE: &str = "analyze-baseline.toml";

struct Opts {
    command: String,
    fix_baseline: bool,
    list: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tw-analyze <analyze|rules> [--fix-baseline] [--list] \
         [--root DIR] [--baseline FILE]\n       \
         tw-analyze bench [--smoke] [--seed N] [--out FILE]\n       \
         tw-analyze validate-bench [FILE]"
    );
    ExitCode::from(2)
}

/// Dispatches the bench subcommands, which have their own flag grammar.
fn bench_command(command: &str, args: &[String]) -> ExitCode {
    let root = match walk::find_root(None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "bench" => xtask::bench::bench_cli(args, &root),
        _ => xtask::bench::validate_cli(args, &root),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tw-analyze: {command}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts {
        command: String::new(),
        fix_baseline: false,
        list: false,
        root: None,
        baseline: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-baseline" => opts.fix_baseline = true,
            "--list" => opts.list = true,
            "--root" => opts.root = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            cmd if opts.command.is_empty() && !cmd.starts_with('-') => {
                opts.command = cmd.to_string();
            }
            _ => return Err(usage()),
        }
    }
    if opts.command.is_empty() {
        opts.command = "analyze".to_string();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(command @ ("bench" | "validate-bench")) = argv.first().map(String::as_str) {
        return bench_command(command, &argv[1..]);
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    match opts.command.as_str() {
        "rules" => {
            println!("{:<15} {:<17} description", "rule", "family");
            for (name, family, desc) in RULES {
                println!("{name:<15} {family:<17} {desc}");
            }
            ExitCode::SUCCESS
        }
        "analyze" => analyze(&opts),
        _ => usage(),
    }
}

fn analyze(opts: &Opts) -> ExitCode {
    let root = match walk::find_root(opts.root.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match xtask::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tw-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));

    if opts.fix_baseline {
        if let Err(e) = report.as_baseline().save(&baseline_path) {
            eprintln!("tw-analyze: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} entries, {} active violations across {} files)",
            baseline_path.display(),
            report.counts.len(),
            report.active().count(),
            report.files_analyzed,
        );
        return ExitCode::SUCCESS;
    }

    if opts.list {
        for v in &report.violations {
            match &v.suppressed {
                Some(reason) => println!(
                    "{}:{}: [{}] suppressed: {} (tw-allow: {reason})",
                    v.file, v.line, v.rule, v.message
                ),
                None => println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message),
            }
        }
    }

    let cmp = match report.compare(&baseline_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tw-analyze: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    // Per-family summary of active violations.
    let mut by_family: BTreeMap<&str, u64> = BTreeMap::new();
    for v in report.active() {
        *by_family.entry(family_of(v.rule)).or_insert(0) += 1;
    }
    println!(
        "tw-analyze: {} files, {} active violations ({} suppressed by tw-allow)",
        report.files_analyzed,
        report.active().count(),
        report.suppressed_count(),
    );
    for (family, n) in &by_family {
        println!("  {family:<17} {n}");
    }

    if !cmp.improvements.is_empty() {
        println!("ratchet can tighten (run with --fix-baseline to lock in):");
        for (file, rule, now, base) in &cmp.improvements {
            println!("  {file} [{rule}] {base} -> {now}");
        }
    }

    if cmp.is_regression() {
        eprintln!("tw-analyze: NEW violations over the committed baseline:");
        for (file, rule, now, base) in &cmp.regressions {
            eprintln!("  {file} [{rule}] baseline {base}, now {now}:");
            for v in report
                .active()
                .filter(|v| v.file == *file && v.rule == *rule)
            {
                eprintln!("    {}:{}: {}", v.file, v.line, v.message);
            }
        }
        eprintln!(
            "fix the new violations, add `// tw-allow(rule): reason` with justification,\n\
             or (for intentional debt) rerun with --fix-baseline and commit the result."
        );
        return ExitCode::FAILURE;
    }
    let baselined: u64 = Baseline::load(&baseline_path)
        .map(|b| b.entries.values().sum())
        .unwrap_or(0);
    println!("clean vs. baseline ({baselined} grandfathered)");
    ExitCode::SUCCESS
}
