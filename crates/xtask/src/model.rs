//! The symbolic item model: a brace-aware view of one source file.
//!
//! The lexical rules in [`crate::rules`] look at a token and its immediate
//! neighbours; the symbolic rules in [`crate::symbolic`] need *structure* —
//! which function a loop is in, how long a lock guard stays live, what a
//! function calls. This module builds that structure on top of the lexer,
//! without a real parser: function bodies are matched-brace token ranges,
//! and every per-function fact is recorded with its token index so span
//! containment is a pair of integer comparisons.
//!
//! Per function the model records:
//!
//! * **locks acquired**, in order — zero-argument `.lock()` / `.read()` /
//!   `.write()` calls, with the field name before the call as the lock's
//!   identity and, for `let`-bound guards, the token span during which the
//!   guard is lexically live (until the enclosing block closes or
//!   `drop(guard)`, the same scope model as the lexical `lock-hygiene`
//!   rule);
//! * **calls made** — `name(`/`recv.name(` sites, for one-level cross-file
//!   resolution by name;
//! * **loops** (`for`/`while`/`loop`) with their body token ranges;
//! * **governor polls** (`cancelled()` or a `charge_*` whose result is
//!   consumed) and **budget accruals** (`add_dtw_cells`/`charge_cells`/… or
//!   a `fetch_add` on a metered counter field);
//! * **blocking calls** (`sync`/`sleep`/`commit`/`flush`/retry-backoff
//!   names) with their receiver, for the `lock-blocking` rule;
//! * **counter increments** (`field.fetch_add(` / `field +=`) and the set
//!   of identifiers the body mentions, for the `stats-ledger` rule.
//!
//! Test code (`#[cfg(test)]` / `#[test]` items) is excluded, exactly as in
//! the lexical pass. Nested `fn` items own their tokens: a loop inside a
//! nested helper is attributed to the helper, not its enclosing function.

use std::collections::BTreeSet;

use crate::lexer::{Kind, Ledger, Lexed, Token};
use crate::rules::{self, FileClass};

/// Method names whose zero-argument call acquires a lock guard.
const GUARD_CALLS: &[&str] = &["lock", "read", "write"];

/// Calls that charge the query budget meters the `cancel-coverage` rule
/// tracks (`dtw_cells` / `pager_reads` work, per the §10 cost model).
pub const ACCRUAL_CALLS: &[&str] = &[
    "add_dtw_cells",
    "add_pager_reads",
    "charge_cells",
    "charge_pager_reads",
];

/// Counter fields whose direct `fetch_add` counts as a budget accrual.
pub const ACCRUAL_FIELDS: &[&str] = &["dtw_cells", "pager_reads"];

/// Calls that observe the governor. `cancelled`/`is_cancelled` always
/// poll; the `charge_*` family polls only when the returned should-cancel
/// flag is consumed (`if token.charge_cells(n) { … }`), not discarded.
pub const POLL_CALLS: &[&str] = &[
    "cancelled",
    "is_cancelled",
    "charge_cells",
    "charge_pager_reads",
    "charge_candidate_bytes",
];

/// Whether a call name is considered blocking for `lock-blocking`:
/// device syncs, sleeps, WAL commits/flushes, and retry/backoff helpers.
pub fn is_blocking_call(name: &str) -> bool {
    matches!(name, "sync" | "sleep" | "commit" | "flush")
        || name.contains("retry")
        || name.contains("backoff")
}

/// One call site: `name(`, with the receiver ident if it was `recv.name(`.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub receiver: Option<String>,
    pub tok: usize,
    pub line: u32,
}

/// One `for`/`while`/`loop` with its body token range (inside the braces).
#[derive(Debug, Clone)]
pub struct LoopSite {
    pub line: u32,
    pub body: (usize, usize),
}

/// One lock acquisition. `guard` is the `let`-bound variable when the
/// acquisition is a guard binding; `span_end` is the token index where the
/// guard dies (`== tok` for temporaries, which release within their own
/// statement).
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// Lock identity: the field name before `.lock()`, if nameable.
    pub lock: Option<String>,
    pub guard: Option<String>,
    pub tok: usize,
    pub span_end: usize,
    pub line: u32,
}

/// A named fact site (accrual or counter increment).
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    pub tok: usize,
    pub line: u32,
}

/// A governor-poll site; `consumed` is false when the charge result was
/// discarded (`let _ = …` or bare statement position).
#[derive(Debug, Clone)]
pub struct PollSite {
    pub tok: usize,
    pub line: u32,
    pub consumed: bool,
}

/// One function (free, method, or nested) with its per-body facts.
#[derive(Debug)]
pub struct FnModel {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub decl: usize,
    /// `(open brace, close brace)` token indices of the body.
    pub body: (usize, usize),
    pub calls: Vec<CallSite>,
    pub loops: Vec<LoopSite>,
    pub locks: Vec<LockEvent>,
    pub accruals: Vec<Site>,
    pub polls: Vec<PollSite>,
    pub blocking: Vec<CallSite>,
    pub increments: Vec<Site>,
    /// Every identifier the body mentions (for manifest tooth checks).
    pub mentions: BTreeSet<String>,
}

impl FnModel {
    /// Guard-bound acquisitions with a non-empty live span.
    pub fn guards(&self) -> impl Iterator<Item = &LockEvent> {
        self.locks
            .iter()
            .filter(|l| l.guard.is_some() && l.span_end > l.tok)
    }
}

/// One struct field: name, first identifier of its type, source line.
#[derive(Debug, Clone)]
pub struct FieldModel {
    pub name: String,
    pub ty: String,
    pub line: u32,
}

/// One struct definition with its named fields.
#[derive(Debug)]
pub struct StructModel {
    pub name: String,
    pub line: u32,
    pub fields: Vec<FieldModel>,
}

/// The symbolic model of one analyzed file.
#[derive(Debug)]
pub struct FileModel {
    pub rel: String,
    pub class: FileClass,
    pub fns: Vec<FnModel>,
    pub structs: Vec<StructModel>,
    pub ledgers: Vec<Ledger>,
}

/// Builds the model for one lexed file.
pub fn build(rel: &str, lexed: &Lexed, class: FileClass) -> FileModel {
    let tokens = &lexed.tokens;
    let skip = rules::test_code_mask(tokens);
    let mut fns = find_fns(tokens, &skip);
    collect_facts(tokens, &skip, &mut fns);
    FileModel {
        rel: rel.to_string(),
        class,
        fns,
        structs: find_structs(tokens, &skip),
        ledgers: lexed.ledgers.clone(),
    }
}

fn at(tokens: &[Token], i: usize) -> &str {
    tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens
        .get(i)
        .filter(|t| t.kind == Kind::Ident)
        .map(|t| t.text.as_str())
}

// ---------------------------------------------------------------------------
// item discovery
// ---------------------------------------------------------------------------

/// Finds every `fn` with a body, outer functions before the ones nested in
/// them (token order guarantees that).
fn find_fns(tokens: &[Token], skip: &[bool]) -> Vec<FnModel> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if skip[i] || tokens[i].kind != Kind::Ident || tokens[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        // The body `{` is the first brace at paren/bracket depth 0 after the
        // signature; a `;` first means a bodyless trait declaration.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let close = rules::matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
        out.push(FnModel {
            name: name.to_string(),
            line: tokens[i].line,
            decl: i,
            body: (open, close),
            calls: Vec::new(),
            loops: Vec::new(),
            locks: Vec::new(),
            accruals: Vec::new(),
            polls: Vec::new(),
            blocking: Vec::new(),
            increments: Vec::new(),
            mentions: BTreeSet::new(),
        });
        i = open + 1; // descend: nested fns are separate items
    }
    out
}

/// Finds `struct Name { … }` definitions and their named fields.
fn find_structs(tokens: &[Token], skip: &[bool]) -> Vec<StructModel> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if skip[i] || tokens[i].kind != Kind::Ident || tokens[i].text != "struct" {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        // Scan past generics to the defining delimiter; `;` and `(` mean
        // unit/tuple structs, which have no named fields to model.
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match at(tokens, j) {
                ";" | "(" => break,
                "{" => {
                    open = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        // Unit/tuple structs have no named fields but are still nameable
        // (the ledger scope check resolves structs by name).
        let Some(open) = open else {
            out.push(StructModel {
                name: name.to_string(),
                line: tokens[i].line,
                fields: Vec::new(),
            });
            i = j + 1;
            continue;
        };
        let close = rules::matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
        let mut fields = Vec::new();
        let mut depth = 0i32;
        for k in open + 1..close {
            let t = &tokens[k];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
                continue;
            }
            // A field is `name :` at depth 0 inside the braces; the type's
            // first identifier is enough to classify it (u64 / AtomicU64 /
            // container).
            if depth == 0 && t.kind == Kind::Ident && at(tokens, k + 1) == ":" {
                let ty = (k + 2..close)
                    .take(12)
                    .find_map(|m| ident_at(tokens, m))
                    .unwrap_or("")
                    .to_string();
                fields.push(FieldModel {
                    name: t.text.clone(),
                    ty,
                    line: t.line,
                });
            }
        }
        out.push(StructModel {
            name: name.to_string(),
            line: tokens[i].line,
            fields,
        });
        i = close + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// per-function fact collection
// ---------------------------------------------------------------------------

/// Maps each token to the innermost function owning it (or MAX for module-
/// level tokens). Functions are in token order, so painting ranges in order
/// lets nested items overwrite their enclosing function's claim.
fn owners(tokens: &[Token], fns: &[FnModel]) -> Vec<usize> {
    let mut owner = vec![usize::MAX; tokens.len()];
    for (k, f) in fns.iter().enumerate() {
        for slot in owner.iter_mut().take(f.body.1 + 1).skip(f.decl) {
            *slot = k;
        }
    }
    owner
}

fn collect_facts(tokens: &[Token], skip: &[bool], fns: &mut [FnModel]) {
    let owner = owners(tokens, fns);
    let own = |i: usize| -> Option<usize> {
        let k = *owner.get(i)?;
        (k != usize::MAX && !skip[i]).then_some(k)
    };

    // Acquisitions first, so guard binding can claim them by token index.
    let mut acquisitions: Vec<(usize, LockEvent)> = Vec::new(); // (fn, event)
    for (i, t) in tokens.iter().enumerate() {
        let Some(k) = own(i) else { continue };
        let is_acquire = t.kind == Kind::Ident
            && GUARD_CALLS.contains(&t.text.as_str())
            && at(tokens, i.wrapping_sub(1)) == "."
            && at(tokens, i + 1) == "("
            && at(tokens, i + 2) == ")";
        if is_acquire {
            let lock = i
                .checked_sub(2)
                .and_then(|p| ident_at(tokens, p))
                .map(str::to_string);
            acquisitions.push((
                k,
                LockEvent {
                    lock,
                    guard: None,
                    tok: i,
                    span_end: i,
                    line: t.line,
                },
            ));
        }
    }

    // `let [mut] name = …lock()…;` promotes acquisitions in the initializer
    // to guards that live until the block closes or `drop(name)`.
    for (i, t) in tokens.iter().enumerate() {
        let Some(k) = own(i) else { continue };
        if t.kind != Kind::Ident || t.text != "let" {
            continue;
        }
        let mut j = i + 1;
        if at(tokens, j) == "mut" {
            j += 1;
        }
        let Some(name) = ident_at(tokens, j) else {
            continue;
        };
        if name == "_" || at(tokens, j + 1) != "=" {
            continue;
        }
        let Some(semi) = (j + 2..tokens.len().min(j + 62)).find(|&m| tokens[m].text == ";") else {
            continue;
        };
        let body_end = fns[k].body.1;
        let span_end = guard_span_end(tokens, semi + 1, body_end, name);
        for (ak, acq) in acquisitions.iter_mut() {
            // The initializer must *end* in the acquisition (`…lock();`):
            // anything chained after it (`.lock().clone()`) consumes the
            // temporary guard within the statement, so the binding is a
            // value, not a guard.
            if *ak == k && acq.tok > j + 1 && acq.tok + 3 == semi {
                acq.guard = Some(name.to_string());
                acq.span_end = span_end;
            }
        }
    }
    for (k, acq) in acquisitions {
        fns[k].locks.push(acq);
    }

    // Everything else is a single pass keyed on the token's owner.
    for (i, t) in tokens.iter().enumerate() {
        let Some(k) = own(i) else { continue };
        let f = &mut fns[k];
        let prev = at(tokens, i.wrapping_sub(1));
        let next = at(tokens, i + 1);

        if t.kind == Kind::Ident && i > f.body.0 {
            f.mentions.insert(t.text.clone());
        }

        if t.kind == Kind::Punct && t.text == "+=" {
            if let Some(name) = i.checked_sub(1).and_then(|p| ident_at(tokens, p)) {
                f.increments.push(Site {
                    name: name.to_string(),
                    tok: i,
                    line: t.line,
                });
            }
            continue;
        }
        if t.kind != Kind::Ident {
            continue;
        }

        match t.text.as_str() {
            "for" | "while" | "loop" => {
                if let Some(open) = loop_body_open(tokens, i) {
                    let close = rules::matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
                    f.loops.push(LoopSite {
                        line: t.line,
                        body: (open, close),
                    });
                }
                continue;
            }
            "fetch_add" if prev == "." && next == "(" => {
                if let Some(name) = i.checked_sub(2).and_then(|p| ident_at(tokens, p)) {
                    f.increments.push(Site {
                        name: name.to_string(),
                        tok: i,
                        line: t.line,
                    });
                    if ACCRUAL_FIELDS.contains(&name) {
                        f.accruals.push(Site {
                            name: name.to_string(),
                            tok: i,
                            line: t.line,
                        });
                    }
                }
                continue;
            }
            _ => {}
        }

        if next != "(" {
            continue;
        }
        let name = t.text.as_str();
        if ACCRUAL_CALLS.contains(&name) {
            f.accruals.push(Site {
                name: name.to_string(),
                tok: i,
                line: t.line,
            });
        }
        if POLL_CALLS.contains(&name) && prev == "." {
            f.polls.push(PollSite {
                tok: i,
                line: t.line,
                consumed: result_is_consumed(tokens, i),
            });
        }
        let receiver = (prev == ".")
            .then(|| i.checked_sub(2).and_then(|p| ident_at(tokens, p)))
            .flatten()
            .map(str::to_string);
        if is_blocking_call(name) {
            f.blocking.push(CallSite {
                name: name.to_string(),
                receiver: receiver.clone(),
                tok: i,
                line: t.line,
            });
        }
        let is_acquire = GUARD_CALLS.contains(&name) && prev == "." && at(tokens, i + 2) == ")";
        let is_keyword = matches!(
            name,
            "if" | "while" | "for" | "match" | "loop" | "return" | "move" | "fn" | "drop"
        );
        if !is_acquire && !is_keyword && prev != "fn" {
            f.calls.push(CallSite {
                name: name.to_string(),
                receiver,
                tok: i,
                line: t.line,
            });
        }
    }
}

/// Where a guard bound just before `from` dies: the enclosing block's `}`
/// (depth goes negative), an explicit `drop(name)`, or the function's end.
fn guard_span_end(tokens: &[Token], from: usize, body_end: usize, name: &str) -> usize {
    let mut depth = 0i32;
    let mut k = from;
    while k <= body_end && k < tokens.len() {
        let t = &tokens[k];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                _ => {}
            }
        } else if t.text == "drop" && at(tokens, k + 1) == "(" && at(tokens, k + 2) == name {
            return k;
        }
        k += 1;
    }
    body_end.min(tokens.len().saturating_sub(1))
}

/// The `{` opening a loop body: the first brace outside parens/brackets
/// after the keyword (loop headers cannot contain bare braces in Rust).
fn loop_body_open(tokens: &[Token], kw: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(kw + 1) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None, // e.g. a stray `loop` label
                _ => {}
            }
        }
    }
    None
}

/// Whether the value produced at call token `i` is consumed. Scans back to
/// the statement start (`;` / `{` / `}`): `let _ =` and bare statement
/// position mean discarded; any control-flow or binding marker in between
/// means the should-cancel flag actually steers the code.
fn result_is_consumed(tokens: &[Token], i: usize) -> bool {
    let start = (0..i)
        .rev()
        .find(|&m| {
            tokens[m].kind == Kind::Punct && matches!(tokens[m].text.as_str(), ";" | "{" | "}")
        })
        .map(|m| m + 1)
        .unwrap_or(0);
    if at(tokens, start) == "let" && at(tokens, start + 1) == "_" {
        return false;
    }
    tokens[start..i].iter().any(|t| {
        matches!(
            t.text.as_str(),
            "if" | "while"
                | "match"
                | "return"
                | "="
                | "=>"
                | "&&"
                | "||"
                | "!"
                | ","
                | "?"
                | "+="
                | "|="
                | "&="
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        build("t.rs", &lex(src), FileClass::library())
    }

    #[test]
    fn fns_and_nested_fns_own_their_tokens() {
        let m = model("fn outer() { for x in v { work(x); }\n fn inner() { loop { spin(); } } }");
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        let inner = &m.fns[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.loops.len(), 1);
        assert_eq!(inner.loops.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name == "work"));
        assert!(!outer.calls.iter().any(|c| c.name == "spin"));
    }

    #[test]
    fn guard_spans_and_temporaries() {
        let m = model(
            "fn f(&self) { let wal = self.wal.lock(); wal.push(1); drop(wal); \
             self.meta.lock().bump(); }",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 2);
        let wal = &f.locks[0];
        assert_eq!(wal.lock.as_deref(), Some("wal"));
        assert_eq!(wal.guard.as_deref(), Some("wal"));
        assert!(wal.span_end > wal.tok);
        let meta = &f.locks[1];
        assert_eq!(meta.lock.as_deref(), Some("meta"));
        assert!(meta.guard.is_none());
        assert_eq!(meta.span_end, meta.tok);
        // drop() released the wal guard before the meta acquisition.
        assert!(wal.span_end < meta.tok);
    }

    #[test]
    fn poll_consumption_is_classified() {
        let m = model(
            "fn f(t: &CancelToken) { if t.charge_cells(9) { return; } \
             let _ = t.charge_cells(1); t.charge_pager_reads(2); \
             let stop = t.charge_cells(3); }",
        );
        let polls = &m.fns[0].polls;
        assert_eq!(polls.len(), 4);
        assert!(polls[0].consumed, "if-condition consumes");
        assert!(!polls[1].consumed, "let _ discards");
        assert!(!polls[2].consumed, "statement position discards");
        assert!(polls[3].consumed, "binding consumes");
    }

    #[test]
    fn accruals_cover_calls_and_field_fetch_add() {
        let m = model(
            "fn f(&self) { self.counters.add_dtw_cells(9); \
             self.dtw_cells.fetch_add(1, Ordering::Relaxed); \
             self.verified.fetch_add(1, Ordering::Relaxed); }",
        );
        let f = &m.fns[0];
        assert_eq!(f.accruals.len(), 2, "{:?}", f.accruals);
        assert_eq!(f.increments.len(), 2, "{:?}", f.increments);
    }

    #[test]
    fn structs_expose_typed_fields() {
        let m = model(
            "pub struct S { pub verified: u64, dtw_cells: AtomicU64, phases: PhaseTimes }\n\
             struct Unit;\nstruct Tup(u64);",
        );
        assert_eq!(m.structs.len(), 3);
        let s = &m.structs[0];
        assert_eq!(s.name, "S");
        let tys: Vec<_> = s.fields.iter().map(|f| f.ty.as_str()).collect();
        assert_eq!(tys, ["u64", "AtomicU64", "PhaseTimes"]);
        assert!(m.structs[1].fields.is_empty());
        assert!(m.structs[2].fields.is_empty());
    }

    #[test]
    fn test_code_is_excluded_from_the_model() {
        let m = model("fn f() {}\n#[cfg(test)]\nmod t { fn g() { loop { x.lock(); } } }");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "f");
    }

    #[test]
    fn blocking_calls_record_their_receiver() {
        let m = model("fn f(&self) { self.pager.sync(); wal.commit(); retry_with_backoff(); }");
        let names: Vec<_> = m.fns[0]
            .blocking
            .iter()
            .map(|b| (b.name.as_str(), b.receiver.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("sync", Some("pager")),
                ("commit", Some("wal")),
                ("retry_with_backoff", None)
            ]
        );
    }
}
