//! The project lint rules, applied to a lexed file.
//!
//! Four rule families (see DESIGN.md "Static analysis & lint policy"):
//!
//! * **panic-freedom** — `unwrap`, `expect`, `panic`, `slice-index`:
//!   library code must propagate `TwError`/`StoreError`/`PersistError`
//!   instead of aborting a query thread. Tests, benches, the CLI and the
//!   examples are exempt (they are not library code and never analyzed).
//! * **float-safety** — `float-eq`, `partial-cmp`: DTW/L∞ code paths must
//!   be NaN-total. `partial_cmp(..).unwrap()` panics on NaN and
//!   `sort_by(partial_cmp)` silently mis-sorts; both must use `total_cmp`.
//! * **format-stability** — `cast`, `endianness`: inside the on-disk
//!   format files, `as` casts silently truncate and anything but
//!   little-endian breaks the TWS1/TWS2/TWR2 layouts pinned by
//!   `tests/format_stability.rs`.
//! * **error-hygiene** — `boxed-error`, `error-stringify`: public
//!   signatures carry concrete error types, and `map_err` closures must not
//!   flatten a source error into a `String` (that severs the `source()`
//!   chain `TwError` promises).
//!
//! * **govern** — `raw-time`: library code must route wall-clock reads and
//!   sleeps through the `Clock` abstraction (`tw_storage::govern`) so query
//!   deadlines are mockable; raw `Instant::now()` / `SystemTime::now()` /
//!   `thread::sleep` are forbidden outside the sanctioned sources.
//! * **concurrency** — `lock-hygiene`: a `let`-bound guard from a
//!   zero-argument `.lock()` / `.read()` / `.write()` must not still be
//!   lexically live when `read_page(` / `write_page(` / `allocate(` /
//!   `.sync(` runs — holding a lock across pager I/O stalls every other
//!   thread for a device round-trip. The baseline holds zero entries.
//!
//! Plus `forbid-unsafe` / `unsafe-code` (every library crate declares
//! `#![forbid(unsafe_code)]`) and `bad-allow` (a `tw-allow` with an unknown
//! rule name or no reason is itself a violation, never a suppression).
//!
//! All checks are lexical. Where a rule would need type inference (e.g.
//! `==` between two float *variables*) we approximate (a float literal on
//! either side) and let the matching clippy lint cover the rest; the
//! workspace `[lints]` table keeps the two in agreement.

use crate::lexer::{lex, Kind, Lexed, Token};

/// Every rule the analyzer knows, with its family (for reporting) and a
/// one-line description (for `--rules` and the docs).
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "unwrap",
        "panic-freedom",
        ".unwrap() forbidden in library code; propagate the error",
    ),
    (
        "expect",
        "panic-freedom",
        ".expect(..) forbidden in library code; propagate the error",
    ),
    (
        "panic",
        "panic-freedom",
        "panic!/unreachable!/todo!/unimplemented! forbidden in library code",
    ),
    (
        "slice-index",
        "panic-freedom",
        "slice indexing can panic; prefer get()/iterators or tw-allow with a bounds argument",
    ),
    (
        "float-eq",
        "float-safety",
        "==/!= against a float literal; compare with an epsilon or total_cmp",
    ),
    (
        "partial-cmp",
        "float-safety",
        "partial_cmp unwrapped or used as a sort comparator; use total_cmp",
    ),
    (
        "cast",
        "format-stability",
        "`as` casts silently truncate in on-disk format code; use try_from/from",
    ),
    (
        "endianness",
        "format-stability",
        "on-disk formats are little-endian; to_be/from_be/to_ne/from_ne forbidden",
    ),
    (
        "boxed-error",
        "error-hygiene",
        "Box<dyn Error> in a public signature; use the concrete error enum",
    ),
    (
        "error-stringify",
        "error-hygiene",
        "map_err flattens an error into a String, severing the source() chain",
    ),
    (
        "raw-time",
        "govern",
        "raw Instant::now/SystemTime::now/thread::sleep in library code; use the Clock abstraction",
    ),
    (
        "lock-hygiene",
        "concurrency",
        "lock guard held across pager I/O (read_page/write_page/sync/allocate); narrow the critical section",
    ),
    (
        "forbid-unsafe",
        "unsafe",
        "library crate roots must declare #![forbid(unsafe_code)]",
    ),
    (
        "unsafe-code",
        "unsafe",
        "unsafe blocks/functions forbidden in library code",
    ),
    (
        "lock-order",
        "concurrency",
        "inconsistent lock-acquisition order forms a potential deadlock cycle",
    ),
    (
        "lock-blocking",
        "concurrency",
        "lock guard held across a blocking call (sync/sleep/commit/flush/retry-backoff)",
    ),
    (
        "cancel-coverage",
        "govern",
        "loop charges dtw_cells/pager_reads without polling the governor",
    ),
    (
        "stats-ledger",
        "observability",
        "counter not reconciled with the in-source tw-ledger accounting manifest",
    ),
    (
        "bad-allow",
        "meta",
        "tw-allow directive with unknown rule or missing reason",
    ),
];

/// Returns the family a rule belongs to, or "meta" if unknown.
pub fn family_of(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|(name, _, _)| *name == rule)
        .map(|(_, fam, _)| *fam)
        .unwrap_or("meta")
}

/// Whether `rule` exists in the catalog (used by `tw-allow` validation and
/// the stale-baseline check).
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(name, _, _)| *name == rule)
}

/// What kind of file is being analyzed; selects the applicable rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code: panic-freedom, float-safety, error-hygiene, unsafe.
    pub library: bool,
    /// On-disk format code: format-stability rules additionally apply.
    pub format: bool,
    /// A library crate root (`lib.rs`): must carry #![forbid(unsafe_code)].
    pub crate_root: bool,
}

impl FileClass {
    pub fn library() -> Self {
        Self {
            library: true,
            format: false,
            crate_root: false,
        }
    }
}

/// One finding. `suppressed` carries the reason of the honoured `tw-allow`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub suppressed: Option<String>,
}

/// Lexes and analyzes one file's source with the *lexical* rules only.
/// `file` is the path label used in reports (repo-relative in real runs,
/// arbitrary in fixture tests). The symbolic families (`lock-order`,
/// `cancel-coverage`, `stats-ledger`) need the whole workspace at once —
/// use [`crate::run_sources`] for those.
pub fn analyze_source(file: &str, source: &str, class: FileClass) -> Vec<Violation> {
    let lexed = lex(source);
    apply_allows(file, scan_lexical(&lexed, class), &lexed)
}

/// The raw lexical findings for one lexed file, before suppression.
pub(crate) fn scan_lexical(lexed: &Lexed, class: FileClass) -> Vec<(u32, &'static str, String)> {
    let skip = test_code_mask(&lexed.tokens);
    let mut raw = scan(&lexed.tokens, &skip, class);
    if class.library {
        raw.extend(scan_lock_hygiene(&lexed.tokens, &skip));
        raw.sort_by_key(|(line, rule, _)| (*line, *rule));
        raw.dedup();
    }
    if class.crate_root && !has_forbid_unsafe(&lexed.tokens) {
        raw.push((1, "forbid-unsafe", "missing #![forbid(unsafe_code)]".into()));
    }
    raw
}

// ---------------------------------------------------------------------------
// test-code detection
// ---------------------------------------------------------------------------

/// Marks token ranges covered by `#[cfg(test)]` / `#[test]` items: the rules
/// do not apply inside them. `#[cfg(not(test))]`-style attributes are left
/// alone (anything mentioning `not` is conservatively treated as non-test).
pub(crate) fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && at(tokens, i + 1) == "[" {
            let attr_end = match matching(tokens, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            let attr = &tokens[i + 2..attr_end];
            if is_test_attr(attr) {
                let item_end = item_end_after(tokens, attr_end + 1);
                for s in skip.iter_mut().take(item_end + 1).skip(i) {
                    *s = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    skip
}

fn is_test_attr(attr: &[Token]) -> bool {
    let has = |t: &str| attr.iter().any(|tok| tok.text == t);
    if has("not") {
        return false;
    }
    // #[test], #[cfg(test)], #[cfg(all(test, ...))], #[tokio::test]-style.
    (attr.len() == 1 && attr[0].text == "test") || (has("cfg") && has("test"))
}

/// Given the index just past an attribute, returns the index of the token
/// that ends the annotated item: the `;` of `mod x;`-style items, or the
/// `}` matching its first body brace. Further attributes are skipped.
fn item_end_after(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() {
        if tokens[i].text == "#" && at(tokens, i + 1) == "[" {
            match matching(tokens, i + 1, "[", "]") {
                Some(e) => i = e + 1,
                None => return tokens.len() - 1,
            }
            continue;
        }
        break;
    }
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            ";" => return j,
            "{" => return matching(tokens, j, "{", "}").unwrap_or(tokens.len() - 1),
            _ => j += 1,
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the delimiter matching `tokens[open_at]`, or None.
pub(crate) fn matching(tokens: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_at) {
        if t.kind == Kind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

fn at(tokens: &[Token], i: usize) -> &str {
    tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

// ---------------------------------------------------------------------------
// the scanning pass
// ---------------------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32",
];

/// Keywords that may directly precede `[` without it being an index
/// expression (slice patterns, array types/literals after `return`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "return", "in", "if", "while", "match", "else", "move", "as", "break",
    "continue", "where", "dyn", "impl", "for", "fn", "const", "static", "use", "pub", "mod",
    "struct", "enum", "trait", "type", "unsafe", "box", "yield", "await", "loop",
];

const PARTIAL_CMP_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_cached_key",
    "binary_search_by",
    "max_by",
    "min_by",
];

fn scan(tokens: &[Token], skip: &[bool], class: FileClass) -> Vec<(u32, &'static str, String)> {
    let mut out: Vec<(u32, &'static str, String)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let next = tokens.get(i + 1);
        let prev_text = prev.map(|p| p.text.as_str()).unwrap_or("");
        let next_text = next.map(|n| n.text.as_str()).unwrap_or("");

        if class.library {
            match t.text.as_str() {
                "unwrap" if prev_text == "." && next_text == "(" => {
                    out.push((t.line, "unwrap", ".unwrap() in library code".into()));
                }
                "expect" if prev_text == "." && next_text == "(" => {
                    out.push((t.line, "expect", ".expect(..) in library code".into()));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if next_text == "!" && prev_text != "::" && prev_text != "." =>
                {
                    out.push((t.line, "panic", format!("{}! in library code", t.text)));
                }
                "unsafe" => {
                    out.push((t.line, "unsafe-code", "unsafe in library code".into()));
                }
                "now"
                    if prev_text == "::"
                        && matches!(
                            i.checked_sub(2).map(|k| tokens[k].text.as_str()),
                            Some("Instant") | Some("SystemTime")
                        ) =>
                {
                    out.push((
                        t.line,
                        "raw-time",
                        format!(
                            "{}::now() in library code; route time through the Clock trait",
                            at(tokens, i - 2)
                        ),
                    ));
                }
                "sleep"
                    if prev_text == "::"
                        && i.checked_sub(2).map(|k| tokens[k].text.as_str()) == Some("thread") =>
                {
                    out.push((
                        t.line,
                        "raw-time",
                        "thread::sleep in library code; use Clock::sleep".into(),
                    ));
                }
                "partial_cmp" if prev_text != "fn" => {
                    if let Some(end) = (next_text == "(")
                        .then(|| matching(tokens, i + 1, "(", ")"))
                        .flatten()
                    {
                        let method = at(tokens, end + 2);
                        if at(tokens, end + 1) == "." && (method == "unwrap" || method == "expect")
                        {
                            out.push((
                                t.line,
                                "partial-cmp",
                                format!("partial_cmp(..).{method}() panics on NaN; use total_cmp"),
                            ));
                        }
                    }
                }
                s if PARTIAL_CMP_SINKS.contains(&s) && next_text == "(" => {
                    if let Some(end) = matching(tokens, i + 1, "(", ")") {
                        if tokens[i + 1..end].iter().any(|a| a.text == "partial_cmp") {
                            out.push((
                                t.line,
                                "partial-cmp",
                                format!(
                                    "{s}(.. partial_cmp ..) is not a total order; use total_cmp"
                                ),
                            ));
                        }
                    }
                }
                "map_err" if next_text == "(" => {
                    if let Some(end) = matching(tokens, i + 1, "(", ")") {
                        let args = &tokens[i + 1..end];
                        let stringifies = args
                            .iter()
                            .any(|a| a.text == "to_string" || a.text == "format");
                        let wraps_error = args
                            .iter()
                            .any(|a| a.kind == Kind::Ident && a.text.ends_with("Error"));
                        if stringifies && wraps_error {
                            out.push((
                                t.line,
                                "error-stringify",
                                "map_err stringifies the source error; wrap it instead".into(),
                            ));
                        }
                    }
                }
                "fn" => {
                    if let Some(v) = check_fn_signature(tokens, i) {
                        out.push(v);
                    }
                }
                _ => {}
            }

            // Slice/array indexing: a postfix `[` after an expression-ending
            // token. Attribute brackets (`#[`), macro brackets (`vec![`),
            // types and patterns are all excluded by the prev-token shape.
            if t.text == "[" && t.kind == Kind::Punct {
                if let Some(p) = prev {
                    let postfix = match p.kind {
                        Kind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        Kind::Int => true, // tuple-field access chains: x.0[i]
                        Kind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                        _ => false,
                    };
                    if postfix {
                        out.push((t.line, "slice-index", "indexing can panic".into()));
                    }
                }
            }

            // Float (in)equality against a literal.
            if t.kind == Kind::Punct && (t.text == "==" || t.text == "!=") {
                let float_side = prev.map(|p| p.kind == Kind::Float).unwrap_or(false)
                    || next.map(|n| n.kind == Kind::Float).unwrap_or(false);
                if float_side {
                    out.push((
                        t.line,
                        "float-eq",
                        format!("`{}` against a float literal", t.text),
                    ));
                }
            }
        }

        if class.format {
            match t.text.as_str() {
                "as" if INT_TYPES.contains(&next_text) => {
                    out.push((
                        t.line,
                        "cast",
                        format!("`as {next_text}` in format code can truncate; use try_from/from"),
                    ));
                }
                "to_be_bytes" | "from_be_bytes" | "to_ne_bytes" | "from_ne_bytes" => {
                    out.push((
                        t.line,
                        "endianness",
                        format!("{} in format code; formats are little-endian", t.text),
                    ));
                }
                _ => {}
            }
        }
    }
    // A line can hit the same rule twice (e.g. two indexes); keep both — the
    // ratchet counts occurrences — but collapse exact duplicates from
    // overlapping detectors.
    out.dedup();
    out
}

/// Flags `Box<dyn ..Error..>` anywhere in a `pub fn` signature.
fn check_fn_signature(tokens: &[Token], fn_at: usize) -> Option<(u32, &'static str, String)> {
    // Public? Look back past `async`/`const`/`unsafe`/`extern "C"` for `pub`
    // not followed by a restriction like `pub(crate)`.
    let mut k = fn_at;
    let mut public = false;
    for _ in 0..4 {
        k = k.checked_sub(1)?;
        match tokens[k].text.as_str() {
            "async" | "const" | "unsafe" | "extern" => continue,
            "pub" => {
                public = at(tokens, k + 1) != "(";
                break;
            }
            _ => break,
        }
    }
    if !public {
        return None;
    }
    let mut j = fn_at + 1;
    while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
        if tokens[j].text == "Box"
            && at(tokens, j + 1) == "<"
            && at(tokens, j + 2) == "dyn"
            && tokens
                .get(j + 3..tokens.len().min(j + 8))
                .unwrap_or_default()
                .iter()
                .any(|t| t.text.ends_with("Error"))
        {
            return Some((
                tokens[j].line,
                "boxed-error",
                "Box<dyn Error> in public signature; use the concrete error enum".into(),
            ));
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// lock hygiene
// ---------------------------------------------------------------------------

/// Pager I/O calls that must not run under a lock guard: holding a mutex or
/// rwlock across device I/O turns every reader into a hostage of the disk.
const PAGER_IO_CALLS: &[&str] = &["read_page", "write_page", "allocate"];

/// Flags pager I/O performed while a lexically live lock guard is held.
///
/// A guard is a `let`-binding whose initializer ends in a zero-argument
/// `.lock()` / `.read()` / `.write()` call (the `Mutex`/`RwLock` shapes;
/// `io::Read::read(&mut buf)`-style calls take arguments and do not match).
/// The guard is considered held from its `;` until the enclosing block
/// closes or an explicit `drop(guard)` releases it, whichever comes first.
/// Inside that span, `read_page(` / `write_page(` / `allocate(` / `.sync(`
/// each fire one violation. Purely lexical: guards smuggled across function
/// boundaries are out of scope, as is I/O hidden behind helper calls.
fn scan_lock_hygiene(tokens: &[Token], skip: &[bool]) -> Vec<(u32, &'static str, String)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.text != "let" || t.kind != Kind::Ident {
            continue;
        }
        // Bound name: `let [mut] name = ...`. Tuple/struct patterns are
        // skipped — the common guard shape is a plain binding.
        let mut j = i + 1;
        if at(tokens, j) == "mut" {
            j += 1;
        }
        let (name, name_kind) = match tokens.get(j) {
            Some(n) => (n.text.as_str(), n.kind),
            None => continue,
        };
        // `let _ = m.lock()` drops the guard immediately — not a hold.
        if name_kind != Kind::Ident || name == "_" || at(tokens, j + 1) != "=" {
            continue;
        }
        // Find the statement-ending `;` (bounded lookahead; nested calls are
        // fine, initializers with block bodies are not worth chasing).
        let semi = match (j + 2..tokens.len().min(j + 62)).find(|&k| tokens[k].text == ";") {
            Some(k) => k,
            None => continue,
        };
        let init = &tokens[j + 2..semi];
        let acquires_guard = init.windows(4).any(|w| {
            w[0].text == "."
                && matches!(w[1].text.as_str(), "lock" | "read" | "write")
                && w[2].text == "("
                && w[3].text == ")"
        });
        if !acquires_guard {
            continue;
        }
        // The guard lives until the enclosing block closes or `drop(name)`.
        let mut depth = 0i32;
        let mut k = semi + 1;
        while k < tokens.len() {
            let tk = &tokens[k];
            match tk.text.as_str() {
                "{" if tk.kind == Kind::Punct => depth += 1,
                "}" if tk.kind == Kind::Punct => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                "drop" if at(tokens, k + 1) == "(" && at(tokens, k + 2) == name => break,
                io if PAGER_IO_CALLS.contains(&io) && at(tokens, k + 1) == "(" => {
                    // I/O *through this guard* (`guard.read_page(..)`) means
                    // the lock protects the device itself — the granular
                    // pattern the rule exists to encourage, not a violation.
                    let through_guard = at(tokens, k.wrapping_sub(1)) == "."
                        && at(tokens, k.wrapping_sub(2)) == name;
                    if !through_guard {
                        out.push((
                            tk.line,
                            "lock-hygiene",
                            format!("{io}() while the `{name}` guard is held"),
                        ));
                    }
                }
                "sync"
                    if at(tokens, k.wrapping_sub(1)) == "."
                        && at(tokens, k + 1) == "("
                        && at(tokens, k.wrapping_sub(2)) != name =>
                {
                    out.push((
                        tk.line,
                        "lock-hygiene",
                        format!("sync() while the `{name}` guard is held"),
                    ));
                }
                _ => {}
            }
            k += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// suppression
// ---------------------------------------------------------------------------

pub(crate) fn apply_allows(
    file: &str,
    raw: Vec<(u32, &'static str, String)>,
    lexed: &Lexed,
) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    for allow in &lexed.allows {
        let bad: Vec<&String> = allow.rules.iter().filter(|r| !is_known_rule(r)).collect();
        if !bad.is_empty() {
            out.push(Violation {
                file: file.into(),
                line: allow.line,
                rule: "bad-allow",
                message: format!("tw-allow names unknown rule(s): {bad:?}"),
                suppressed: None,
            });
        }
        if allow.reason.is_empty() || allow.rules.is_empty() {
            out.push(Violation {
                file: file.into(),
                line: allow.line,
                rule: "bad-allow",
                message: "tw-allow needs rules and a reason: // tw-allow(rule): why".into(),
                suppressed: None,
            });
        }
    }
    for (line, rule, message) in raw {
        let suppressed = lexed
            .allows
            .iter()
            .find(|a| {
                !a.reason.is_empty()
                    && a.rules.iter().any(|r| r == rule)
                    && ((a.standalone && a.line + 1 == line) || (!a.standalone && a.line == line))
            })
            .map(|a| a.reason.clone());
        out.push(Violation {
            file: file.into(),
            line,
            rule,
            message,
            suppressed,
        });
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(src: &str, class: FileClass) -> Vec<(&'static str, u32)> {
        analyze_source("t.rs", src, class)
            .into_iter()
            .filter(|v| v.suppressed.is_none())
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}\n";
        assert!(fired(src, FileClass::library()).is_empty());
    }

    #[test]
    fn trailing_and_standalone_allows() {
        let src = "fn f() { x.unwrap(); // tw-allow(unwrap): fresh vec is non-empty\n\
                   // tw-allow(panic): state machine exhaustive\n panic!(\"no\"); }";
        assert!(fired(src, FileClass::library()).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad_allow() {
        let src = "fn f() { x.unwrap(); // tw-allow(unwrap)\n}";
        let rules = fired(src, FileClass::library());
        assert!(rules.contains(&("bad-allow", 1)));
        assert!(rules.contains(&("unwrap", 1)), "{rules:?}");
    }

    #[test]
    fn raw_time_fires_on_clock_bypass() {
        let src = "fn f() { let t = std::time::Instant::now();\n std::thread::sleep(d);\n \
                   let w = SystemTime::now(); }";
        let rules = fired(src, FileClass::library());
        assert_eq!(
            rules.iter().filter(|(r, _)| *r == "raw-time").count(),
            3,
            "{rules:?}"
        );
    }

    #[test]
    fn clock_trait_calls_are_not_raw_time() {
        let src = "fn f(c: &dyn Clock) { let t = c.now(); c.sleep(d); }";
        let rules = fired(src, FileClass::library());
        assert!(rules.iter().all(|(r, _)| *r != "raw-time"), "{rules:?}");
    }

    #[test]
    fn raw_time_allow_escape_hatch() {
        let src = "fn f() { Instant::now(); // tw-allow(raw-time): sanctioned source\n}";
        assert!(fired(src, FileClass::library()).is_empty());
    }

    #[test]
    fn lock_guard_across_pager_io_fires() {
        let src = "fn f(&self) { let meta = self.meta.lock();\n \
                   self.pager.read_page(0, &mut buf)?;\n }";
        let rules = fired(src, FileClass::library());
        assert!(rules.contains(&("lock-hygiene", 2)), "{rules:?}");
    }

    #[test]
    fn rwlock_guard_across_sync_fires() {
        let src = "fn f(&self) { let base = self.base.write();\n self.pager.sync()?;\n }";
        let rules = fired(src, FileClass::library());
        assert!(rules.contains(&("lock-hygiene", 2)), "{rules:?}");
    }

    #[test]
    fn dropped_guard_before_io_is_clean() {
        let src = "fn f(&self) { let meta = self.meta.lock(); let n = meta.len; drop(meta);\n \
                   self.pager.read_page(0, &mut buf)?;\n }";
        let rules = fired(src, FileClass::library());
        assert!(rules.iter().all(|(r, _)| *r != "lock-hygiene"), "{rules:?}");
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src = "fn f(&self) { { let meta = self.meta.lock(); let _ = meta.len; }\n \
                   self.pager.write_page(0, &buf)?;\n }";
        let rules = fired(src, FileClass::library());
        assert!(rules.iter().all(|(r, _)| *r != "lock-hygiene"), "{rules:?}");
    }

    #[test]
    fn io_read_with_arguments_is_not_a_guard() {
        let src = "fn f(&self) { let n = file.read(&mut buf)?;\n \
                   self.pager.read_page(0, &mut buf)?;\n }";
        let rules = fired(src, FileClass::library());
        assert!(rules.iter().all(|(r, _)| *r != "lock-hygiene"), "{rules:?}");
    }

    #[test]
    fn lock_hygiene_allow_escape_hatch() {
        let src = "fn f(&self) { let wal = self.wal.lock();\n \
                   // tw-allow(lock-hygiene): the WAL mutex is its serialization point\n \
                   wal.pager.sync()?;\n }";
        let rules = fired(src, FileClass::library());
        assert!(rules.iter().all(|(r, _)| *r != "lock-hygiene"), "{rules:?}");
    }

    #[test]
    fn doc_comment_examples_are_exempt() {
        let src = "//! ```\n//! x.unwrap();\n//! ```\nfn f() {}\n";
        assert!(fired(src, FileClass::library()).is_empty());
    }
}
