//! SARIF 2.1.0 output for `analyze --format=sarif`.
//!
//! Static Analysis Results Interchange Format: the machine-readable shape
//! CI understands (GitHub code scanning, IDE SARIF viewers). Built on the
//! same hand-rolled [`crate::json`] tree the bench harness uses, so the
//! analyzer stays dependency-free.
//!
//! Level mapping: a finding whose `(file, rule)` count regressed over the
//! committed baseline is an `error` (the run fails); other active findings
//! are `warning` (grandfathered debt); suppressed findings are `note` and
//! carry their `tw-allow` justification as an in-source suppression.

use std::collections::BTreeSet;

use crate::baseline::Comparison;
use crate::json::Json;
use crate::rules::RULES;
use crate::Report;

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders the report (and optionally its baseline comparison) as SARIF.
pub fn to_sarif(report: &Report, cmp: Option<&Comparison>) -> Json {
    let regressed: BTreeSet<(&str, &str)> = cmp
        .map(|c| {
            c.regressions
                .iter()
                .map(|(file, rule, _, _)| (file.as_str(), rule.as_str()))
                .collect()
        })
        .unwrap_or_default();

    let rules = Json::Arr(
        RULES
            .iter()
            .map(|(name, family, desc)| {
                Json::Obj(vec![
                    ("id".into(), Json::Str((*name).into())),
                    (
                        "shortDescription".into(),
                        Json::Obj(vec![("text".into(), Json::Str((*desc).into()))]),
                    ),
                    (
                        "properties".into(),
                        Json::Obj(vec![("family".into(), Json::Str((*family).into()))]),
                    ),
                ])
            })
            .collect(),
    );

    let results = Json::Arr(
        report
            .violations
            .iter()
            .map(|v| {
                let level = match &v.suppressed {
                    Some(_) => "note",
                    None if regressed.contains(&(v.file.as_str(), v.rule)) => "error",
                    None => "warning",
                };
                let location = Json::Obj(vec![(
                    "physicalLocation".into(),
                    Json::Obj(vec![
                        (
                            "artifactLocation".into(),
                            Json::Obj(vec![("uri".into(), Json::Str(v.file.clone()))]),
                        ),
                        (
                            "region".into(),
                            Json::Obj(vec![("startLine".into(), Json::Num(f64::from(v.line)))]),
                        ),
                    ]),
                )]);
                let mut result = vec![
                    ("ruleId".into(), Json::Str(v.rule.into())),
                    ("level".into(), Json::Str(level.into())),
                    (
                        "message".into(),
                        Json::Obj(vec![("text".into(), Json::Str(v.message.clone()))]),
                    ),
                    ("locations".into(), Json::Arr(vec![location])),
                ];
                if let Some(reason) = &v.suppressed {
                    result.push((
                        "suppressions".into(),
                        Json::Arr(vec![Json::Obj(vec![
                            ("kind".into(), Json::Str("inSource".into())),
                            ("justification".into(), Json::Str(reason.clone())),
                        ])]),
                    ));
                }
                Json::Obj(result)
            })
            .collect(),
    );

    let driver = Json::Obj(vec![
        ("name".into(), Json::Str("tw-analyze".into())),
        (
            "informationUri".into(),
            Json::Str("https://github.com/paper-repo-growth/tw-search".into()),
        ),
        ("rules".into(), rules),
    ]);
    Json::Obj(vec![
        ("$schema".into(), Json::Str(SCHEMA.into())),
        ("version".into(), Json::Str("2.1.0".into())),
        (
            "runs".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("tool".into(), Json::Obj(vec![("driver".into(), driver)])),
                ("results".into(), results),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileClass;
    use crate::Source;
    use std::path::Path;

    #[test]
    fn sarif_shape_and_levels() {
        let sources = [Source {
            rel: "crates/core/src/t.rs".into(),
            text: "fn f() { x.unwrap(); // tw-allow(unwrap): fixture\n y.unwrap(); }\n".into(),
            class: FileClass::library(),
        }];
        let report = crate::run_sources(Path::new("."), &sources);
        let sarif = to_sarif(&report, None);
        assert_eq!(sarif.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = sarif.get("runs").and_then(Json::as_arr).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Json::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        let levels: Vec<_> = results
            .iter()
            .filter_map(|r| r.get("level").and_then(Json::as_str))
            .collect();
        assert!(levels.contains(&"note"), "{levels:?}");
        assert!(levels.contains(&"warning"), "{levels:?}");
        // The rule catalog rides along for viewers.
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .expect("rules");
        assert_eq!(rules.len(), RULES.len());
        // Valid JSON end to end.
        let text = sarif.to_pretty().expect("serializes");
        assert!(crate::json::parse(&text).is_ok());
    }
}
