//! The symbolic rule families: workspace-wide checks over [`crate::model`].
//!
//! Unlike the lexical rules (one token window at a time), these passes see
//! every analyzed file at once and reason about structure:
//!
//! * **`lock-order`** — builds the global lock-acquisition graph: an edge
//!   `A → B` whenever lock `B` is acquired while a guard on `A` is live,
//!   either directly or through one level of call resolution (a called
//!   function whose body acquires `B`). Any cycle — including a self-loop,
//!   i.e. re-acquiring a non-reentrant lock — is a potential deadlock.
//! * **`lock-blocking`** — a guard held across a blocking call (`sync`,
//!   `sleep`, `commit`, `flush`, retry/backoff helpers). Blocking *through*
//!   the guard itself (`wal.commit()` on the `wal` guard) is the lock's
//!   purpose and exempt; every *other* live guard at that site fires.
//! * **`cancel-coverage`** — a loop that accrues query budget
//!   (`dtw_cells`/`pager_reads` charges, directly or via one level of call
//!   resolution) must poll the governor: a consumed `charge_*` result, a
//!   `cancelled()` check, or a call whose callee (transitively) polls.
//! * **`stats-ledger`** — reconciles the counter structs named by the
//!   in-source `// tw-ledger(...)` manifest (see `core/src/stats.rs`)
//!   against the §10 accounting invariant: every counter field belongs to
//!   exactly one manifest category, every manifest term names a real field,
//!   and the equation/cost terms must be enforced by
//!   `accounting_balanced()`/`pruned_total()` and aggregated by `merge()`.
//!
//! Call resolution is by bare name across the analyzed file set — no type
//! information — so the passes are deliberately conservative and every
//! finding supports `// tw-allow(rule): reason` at the reported site.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use crate::model::{FileModel, FnModel};

/// One symbolic finding, in raw (pre-suppression) form.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Runs all symbolic passes, returning findings plus per-pass wall times.
pub fn analyze(models: &[FileModel]) -> (Vec<Finding>, Vec<(&'static str, Duration)>) {
    let mut findings = Vec::new();
    let mut timings = Vec::new();
    let resolver = Resolver::new(models);
    for (name, pass) in [
        (
            "lock-order",
            lock_order as fn(&[FileModel], &Resolver) -> Vec<Finding>,
        ),
        ("cancel-coverage", cancel_coverage),
        ("stats-ledger", stats_ledger),
    ] {
        let t = Instant::now();
        findings.extend(pass(models, &resolver));
        timings.push((name, t.elapsed()));
    }
    (findings, timings)
}

/// Name-based call resolution: `name → every fn with that name`, across
/// all analyzed files. One level only — enough to see through the thin
/// wrappers the codebase actually uses, without whole-program explosion.
struct Resolver<'a> {
    by_name: BTreeMap<&'a str, Vec<(usize, usize)>>,
}

impl<'a> Resolver<'a> {
    fn new(models: &'a [FileModel]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, m) in models.iter().enumerate() {
            for (fk, f) in m.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, fk));
            }
        }
        Self { by_name }
    }

    fn resolve(&self, name: &str) -> &[(usize, usize)] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

// ---------------------------------------------------------------------------
// lock-order + lock-blocking
// ---------------------------------------------------------------------------

/// Acquisition-graph edges: `(holder, acquired) → witnessing sites`, each
/// site a `(file, line, via-call suffix)` triple.
type EdgeMap = BTreeMap<(String, String), Vec<(String, u32, String)>>;

fn lock_order(models: &[FileModel], resolver: &Resolver) -> Vec<Finding> {
    // Edge (holder → acquired) with every site that witnesses it.
    let mut edges: EdgeMap = BTreeMap::new();
    let mut findings = Vec::new();

    for m in models {
        for f in &m.fns {
            for g in f.guards() {
                let Some(held) = g.lock.as_deref() else {
                    continue;
                };
                let in_span = |tok: usize| tok > g.tok && tok < g.span_end;
                for a in f.locks.iter().filter(|a| in_span(a.tok)) {
                    if let Some(to) = a.lock.as_deref() {
                        edges
                            .entry((held.to_string(), to.to_string()))
                            .or_default()
                            .push((m.rel.clone(), a.line, String::new()));
                    }
                }
                // One level of call resolution: a callee that acquires.
                // Only `self.helper()` and free/path calls resolve here —
                // a method on an arbitrary receiver (`meta.tail.len()`) is
                // almost always a std-container call that happens to share
                // a name with one of our methods, and a false edge into a
                // lock node fabricates deadlock cycles.
                let resolvable = |c: &crate::model::CallSite| {
                    matches!(c.receiver.as_deref(), None | Some("self"))
                };
                for c in f.calls.iter().filter(|c| in_span(c.tok) && resolvable(c)) {
                    for &(fi, fk) in resolver.resolve(&c.name) {
                        for b in &models[fi].fns[fk].locks {
                            if let Some(to) = b.lock.as_deref() {
                                edges
                                    .entry((held.to_string(), to.to_string()))
                                    .or_default()
                                    .push((m.rel.clone(), c.line, format!(" via {}()", c.name)));
                            }
                        }
                    }
                }
                // Sub-rule: guard held across a blocking call. Blocking
                // through the guard itself is that lock's reason to exist.
                for b in f.blocking.iter().filter(|b| in_span(b.tok)) {
                    if b.receiver.as_deref() == g.guard.as_deref() {
                        continue;
                    }
                    findings.push(Finding {
                        file: m.rel.clone(),
                        line: b.line,
                        rule: "lock-blocking",
                        message: format!(
                            "`{}` guard (lock `{held}`) held across blocking {}()",
                            g.guard.as_deref().unwrap_or("?"),
                            b.name
                        ),
                    });
                }
            }
        }
    }

    findings.extend(report_cycles(&edges));
    findings
}

/// Detects cycles in the acquisition graph and reports each once, at the
/// lexically-first witness of the cycle's first edge.
fn report_cycles(edges: &EdgeMap) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
        adj.entry(to).or_default();
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut stack: Vec<&str> = vec![start];
        let mut on_stack: BTreeSet<&str> = [start].into();
        dfs(start, &adj, &mut stack, &mut on_stack, &mut cycles);
    }
    cycles
        .into_iter()
        .map(|cycle| {
            let first = (cycle[0].clone(), cycle.get(1).unwrap_or(&cycle[0]).clone());
            let (file, line, via) = edges
                .get(&first)
                .and_then(|sites| sites.iter().min_by_key(|(f, l, _)| (f.clone(), *l)))
                .cloned()
                .unwrap_or_default();
            let mut path = cycle.join(" -> ");
            path.push_str(" -> ");
            path.push_str(&cycle[0]);
            let witness = format!(" (first edge at {file}:{line}{via})");
            let message = if cycle.len() == 1 {
                format!(
                    "potential deadlock: lock `{}` re-acquired while already held{witness}",
                    cycle[0]
                )
            } else {
                format!("potential deadlock: lock-order cycle {path}{witness}")
            };
            Finding {
                file,
                line,
                rule: "lock-order",
                message,
            }
        })
        .collect()
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    stack: &mut Vec<&'a str>,
    on_stack: &mut BTreeSet<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if on_stack.contains(next) {
            // Cycle: the stack suffix from `next` onward, canonicalized by
            // rotating the smallest element first so each cycle dedups.
            let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
            let cycle: Vec<String> = stack[pos..].iter().map(|s| s.to_string()).collect();
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.as_str())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut rotated = cycle[min..].to_vec();
            rotated.extend_from_slice(&cycle[..min]);
            cycles.insert(rotated);
            continue;
        }
        // Bounded depth: lock graphs are tiny; recursion is fine, but guard
        // against degenerate inputs all the same.
        if stack.len() > 64 {
            continue;
        }
        stack.push(next);
        on_stack.insert(next);
        dfs(next, adj, stack, on_stack, cycles);
        stack.pop();
        on_stack.remove(next);
    }
}

// ---------------------------------------------------------------------------
// cancel-coverage
// ---------------------------------------------------------------------------

fn cancel_coverage(models: &[FileModel], resolver: &Resolver) -> Vec<Finding> {
    // Fn-level facts. `charges`: the body accrues budget directly.
    // `polls`: the body observes the governor, transitively through calls
    // (fixpoint) — a loop that calls a deep kernel which itself polls is
    // governed, and flagging it would only breed spurious allows.
    let n_fns: Vec<usize> = models.iter().map(|m| m.fns.len()).collect();
    let idx = |fi: usize, fk: usize| -> usize { n_fns[..fi].iter().sum::<usize>() + fk };
    let total: usize = n_fns.iter().sum();

    let mut charges = vec![false; total];
    let mut polls = vec![false; total];
    for (fi, m) in models.iter().enumerate() {
        for (fk, f) in m.fns.iter().enumerate() {
            charges[idx(fi, fk)] = !f.accruals.is_empty();
            polls[idx(fi, fk)] = f.polls.iter().any(|p| p.consumed);
        }
    }
    // Resolution is restricted exactly as in `lock_order`: free/path calls
    // and `self.helper()` only. Methods on arbitrary receivers share names
    // with std container calls (`rows.iter()`, `stack.push(..)`) and would
    // launder governance through unrelated code. The `charge_*`/`cancelled`
    // names are excluded too: they resolve to the governor's own methods,
    // which of course poll — following them would turn a *discarded* charge
    // into a governed loop. Their effect is modeled precisely by
    // `PollSite::consumed`.
    let resolvable = |c: &crate::model::CallSite| {
        matches!(c.receiver.as_deref(), None | Some("self"))
            && !crate::model::POLL_CALLS.contains(&c.name.as_str())
    };
    loop {
        let mut changed = false;
        for (fi, m) in models.iter().enumerate() {
            for (fk, f) in m.fns.iter().enumerate() {
                let me = idx(fi, fk);
                if polls[me] {
                    continue;
                }
                let sees_poll = f
                    .calls
                    .iter()
                    .filter(|c| resolvable(c))
                    .flat_map(|c| resolver.resolve(&c.name))
                    .any(|&(ci, ck)| polls[idx(ci, ck)]);
                if sees_poll {
                    polls[me] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for m in models {
        for f in &m.fns {
            for l in &f.loops {
                let inside = |tok: usize| tok > l.body.0 && tok < l.body.1;
                let accrues = f.accruals.iter().any(|a| inside(a.tok))
                    || f.calls
                        .iter()
                        .filter(|c| inside(c.tok) && resolvable(c))
                        .flat_map(|c| resolver.resolve(&c.name))
                        .any(|&(ci, ck)| charges[idx(ci, ck)]);
                if !accrues {
                    continue;
                }
                let polled = f.polls.iter().any(|p| p.consumed && inside(p.tok))
                    || f.calls
                        .iter()
                        .filter(|c| inside(c.tok) && resolvable(c))
                        .flat_map(|c| resolver.resolve(&c.name))
                        .any(|&(ci, ck)| polls[idx(ci, ck)]);
                if !polled {
                    findings.push(Finding {
                        file: m.rel.clone(),
                        line: l.line,
                        rule: "cancel-coverage",
                        message: "loop charges dtw_cells/pager_reads but never polls the \
                                  governor (cancelled()/consumed charge_*)"
                            .into(),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// stats-ledger
// ---------------------------------------------------------------------------

/// Field types that make a struct member part of the counter ledger.
const COUNTER_TYPES: &[&str] = &["u64", "AtomicU64"];

#[derive(Default)]
struct Manifest {
    /// `(file, line)` of each directive, for attribution.
    equation_at: Option<(String, u32)>,
    lhs: String,
    equation_terms: Vec<String>,
    cost: Vec<(String, String, u32)>, // (name, file, line)
    gauge: Vec<(String, String, u32)>,
    timing: Vec<(String, String, u32)>,
    scopes: Vec<(String, String, u32)>,
}

fn stats_ledger(models: &[FileModel], _resolver: &Resolver) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut man = Manifest::default();
    let mut any = false;
    for m in models {
        for d in &m.ledgers {
            any = true;
            let names = || {
                d.body
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .map(|n| (n, m.rel.clone(), d.line))
                    .collect::<Vec<_>>()
            };
            match d.kind.as_str() {
                "equation" => {
                    let Some((lhs, rhs)) = d.body.split_once('=') else {
                        findings.push(Finding {
                            file: m.rel.clone(),
                            line: d.line,
                            rule: "stats-ledger",
                            message: "tw-ledger(equation) needs `lhs = a + b + …`".into(),
                        });
                        continue;
                    };
                    man.lhs = lhs.trim().to_string();
                    man.equation_terms = rhs
                        .split('+')
                        .map(|t| t.trim().to_string())
                        .filter(|t| !t.is_empty())
                        .collect();
                    man.equation_at = Some((m.rel.clone(), d.line));
                }
                "cost" => man.cost.extend(names()),
                "gauge" => man.gauge.extend(names()),
                "timing" => man.timing.extend(names()),
                "scope" => man.scopes.extend(names()),
                other => findings.push(Finding {
                    file: m.rel.clone(),
                    line: d.line,
                    rule: "stats-ledger",
                    message: format!(
                        "unknown tw-ledger kind `{other}` \
                         (expected equation/cost/gauge/timing/scope)"
                    ),
                }),
            }
        }
    }
    // No manifest anywhere: the rule is inert. The workspace self-check
    // pins the manifest's existence so it cannot be silently deleted.
    if !any {
        return findings;
    }

    // Declared terms, each in exactly one category.
    let mut declared: BTreeMap<&str, u32> = BTreeMap::new();
    let eq_at = man.equation_at.clone().unwrap_or_default();
    let eq_terms: Vec<(String, String, u32)> = std::iter::once(&man.lhs)
        .chain(man.equation_terms.iter())
        .filter(|t| !t.is_empty())
        .map(|t| (t.clone(), eq_at.0.clone(), eq_at.1))
        .collect();
    for (name, file, line) in eq_terms
        .iter()
        .chain(&man.cost)
        .chain(&man.gauge)
        .chain(&man.timing)
    {
        let seen = declared.entry(name.as_str()).or_insert(0);
        *seen += 1;
        if *seen == 2 {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "stats-ledger",
                message: format!("counter `{name}` declared in more than one tw-ledger term"),
            });
        }
    }

    // Scope structs and their counter fields.
    let mut counter_fields: BTreeMap<&str, (&str, u32)> = BTreeMap::new(); // name -> (file, line)
    for (scope, file, line) in &man.scopes {
        let found = models
            .iter()
            .flat_map(|m| m.structs.iter().map(move |s| (m, s)))
            .find(|(_, s)| s.name == *scope);
        let Some((m, s)) = found else {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "stats-ledger",
                message: format!("tw-ledger(scope) names unknown struct `{scope}`"),
            });
            continue;
        };
        for fld in &s.fields {
            if !COUNTER_TYPES.contains(&fld.ty.as_str()) {
                continue;
            }
            counter_fields
                .entry(fld.name.as_str())
                .or_insert((m.rel.as_str(), fld.line));
            if !declared.contains_key(fld.name.as_str()) {
                findings.push(Finding {
                    file: m.rel.clone(),
                    line: fld.line,
                    rule: "stats-ledger",
                    message: format!(
                        "counter `{}` in `{}` is not declared in the tw-ledger manifest \
                         (equation/cost/gauge/timing)",
                        fld.name, s.name
                    ),
                });
            }
        }
    }

    // Stale manifest entries: declared but no such counter field.
    for (name, file, line) in eq_terms
        .iter()
        .chain(&man.cost)
        .chain(&man.gauge)
        .chain(&man.timing)
    {
        if !counter_fields.contains_key(name.as_str()) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "stats-ledger",
                message: format!("tw-ledger term `{name}` matches no counter field in scope"),
            });
        }
    }

    // Teeth: the invariant functions must actually reference the terms.
    let scope_files: BTreeSet<&str> = man
        .scopes
        .iter()
        .filter_map(|(scope, _, _)| {
            models
                .iter()
                .find(|m| m.structs.iter().any(|s| s.name == *scope))
                .map(|m| m.rel.as_str())
        })
        .collect();
    let fns_in_scope = |names: &[&str]| -> Vec<&FnModel> {
        models
            .iter()
            .filter(|m| scope_files.contains(m.rel.as_str()))
            .flat_map(|m| m.fns.iter())
            .filter(|f| names.contains(&f.name.as_str()))
            .collect()
    };
    fn mentions_of<'a>(fns: &[&'a FnModel]) -> BTreeSet<&'a str> {
        fns.iter()
            .flat_map(|f| f.mentions.iter().map(String::as_str))
            .collect()
    }
    let balance_fns = fns_in_scope(&["accounting_balanced", "pruned_total"]);
    let merge_fns = fns_in_scope(&["merge"]);
    if let Some((file, line)) = &man.equation_at {
        let balance_mentions = mentions_of(&balance_fns);
        if balance_fns.is_empty() {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "stats-ledger",
                message: "tw-ledger(equation) declared but no accounting_balanced() enforces it"
                    .into(),
            });
        } else {
            for (t, _, _) in &eq_terms {
                if !balance_mentions.contains(t.as_str()) {
                    findings.push(Finding {
                        file: file.clone(),
                        line: *line,
                        rule: "stats-ledger",
                        message: format!(
                            "equation term `{t}` is not checked by \
                             accounting_balanced()/pruned_total()"
                        ),
                    });
                }
            }
        }
        let merge_mentions = mentions_of(&merge_fns);
        for (t, tf, tl) in eq_terms.iter().chain(&man.cost) {
            if !merge_fns.is_empty() && !merge_mentions.contains(t.as_str()) {
                findings.push(Finding {
                    file: tf.clone(),
                    line: *tl,
                    rule: "stats-ledger",
                    message: format!("counter `{t}` is not aggregated by merge()"),
                });
            }
        }
    }

    // Every increment site of a scoped counter must map onto a term.
    for m in models {
        for f in &m.fns {
            for inc in &f.increments {
                if counter_fields.contains_key(inc.name.as_str())
                    && !declared.contains_key(inc.name.as_str())
                {
                    findings.push(Finding {
                        file: m.rel.clone(),
                        line: inc.line,
                        rule: "stats-ledger",
                        message: format!("increment of `{}` maps onto no tw-ledger term", inc.name),
                    });
                }
            }
        }
    }
    findings
}
