//! Workspace layout knowledge: which files are library code, which are
//! on-disk format code, and how to find the workspace root.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::FileClass;

/// The crates whose `src/` trees are library code and subject to the full
/// rule set. Tool/consumer crates (`cli`, `bench`, `examples`,
/// `integration`, `xtask`) and `vendor/` are exempt by design: panics there
/// abort one process, not a query thread inside the engine.
pub const LIBRARY_CRATES: &[&str] = &[
    "core",
    "storage",
    "rtree",
    "fastmap",
    "suffixtree",
    "workload",
    "net",
];

/// Files implementing the on-disk formats (TWS1/TWS2 records, TWR2 pages):
/// the format-stability rules apply on top of the library rules.
pub const FORMAT_FILES: &[&str] = &[
    "crates/storage/src/codec.rs",
    "crates/storage/src/checksum.rs",
    "crates/storage/src/seqstore.rs",
    "crates/storage/src/shard.rs",
    "crates/storage/src/wal.rs",
    "crates/rtree/src/persist.rs",
    "crates/net/src/protocol.rs",
];

/// Locates the workspace root: an explicit `--root`, else walking up from
/// `$CARGO_MANIFEST_DIR` (set under `cargo run`), else from the cwd, until
/// a `Cargo.toml` containing `[workspace]` is found.
pub fn find_root(explicit: Option<&Path>) -> io::Result<PathBuf> {
    if let Some(root) = explicit {
        return Ok(root.to_path_buf());
    }
    let start = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::current_dir()?,
    };
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        dir = dir.parent().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no workspace Cargo.toml above {}", start.display()),
            )
        })?;
    }
}

/// One file scheduled for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the baseline key).
    pub rel: String,
    pub abs: PathBuf,
    pub class: FileClass,
}

/// Collects every library-crate source file under `root`, classified.
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut rs = Vec::new();
        walk_dir(&src, &mut rs)?;
        rs.sort();
        for abs in rs {
            let rel = abs
                .strip_prefix(root)
                .unwrap_or(&abs)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let class = FileClass {
                library: true,
                format: FORMAT_FILES.contains(&rel.as_str()),
                crate_root: rel == format!("crates/{krate}/src/lib.rs"),
            };
            files.push(SourceFile { rel, abs, class });
        }
    }
    Ok(files)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
