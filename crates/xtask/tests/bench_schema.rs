//! Schema pin for `BENCH_search.json`.
//!
//! The golden fixture (`tests/fixtures/BENCH_search.golden.json`) is a smoke
//! run at the default seed with the legitimately run-dependent fields
//! normalized (`commit` → `"golden"`, every `*elapsed_ms` → `0`). These
//! tests pin:
//!
//! 1. the exact key structure (names and order, recursively);
//! 2. every value except `commit` and the elapsed-time fields — the counters
//!    are a pure function of the seed, so a drift here means the workload
//!    generator, an engine, the sharded fan-out, or the stats layer changed
//!    behaviour;
//! 3. that two same-seed runs differ only in the elapsed-time fields.
//!
//! If a schema change is intentional: bump `SCHEMA_VERSION`, regenerate the
//! fixture with `cargo run -p xtask -- bench --smoke --out <fixture>`, and
//! re-normalize the two run-dependent fields.

use xtask::bench::{self, BenchConfig, ENGINES, SCHEMA_VERSION};
use xtask::json::{self, Json};

const GOLDEN_SEED: u64 = 20010402;

fn golden() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/BENCH_search.golden.json"
    );
    let text = std::fs::read_to_string(path).expect("read golden fixture");
    json::parse(&text).expect("parse golden fixture")
}

fn fresh() -> Json {
    bench::run(&BenchConfig::smoke(GOLDEN_SEED), "golden").expect("smoke bench run")
}

/// Is `path` one of the fields allowed to vary between runs? Covers both
/// the per-engine/ingest `elapsed_ms` and the large arm's
/// `ingest_elapsed_ms` / `query_elapsed_ms`.
fn run_dependent(path: &str) -> bool {
    path == "commit" || path.ends_with("elapsed_ms")
}

/// Recursively asserts equal structure, and equal values outside the
/// run-dependent fields.
fn assert_same(path: &str, a: &Json, b: &Json) {
    match (a, b) {
        (Json::Obj(_), Json::Obj(_)) => {
            assert_eq!(a.keys(), b.keys(), "key drift at {path:?}");
            for key in a.keys() {
                let child = if path.is_empty() {
                    key.to_string()
                } else {
                    format!("{path}.{key}")
                };
                assert_same(&child, a.get(key).unwrap(), b.get(key).unwrap());
            }
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array length drift at {path:?}");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_same(&format!("{path}[{i}]"), x, y);
            }
        }
        _ if run_dependent(path) => {
            // Still pinned to be present and numeric/string as appropriate.
            assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "type drift at {path:?}"
            );
        }
        _ => assert_eq!(a, b, "value drift at {path:?}"),
    }
}

#[test]
fn golden_fixture_passes_the_pinned_schema() {
    let doc = golden();
    bench::validate(&doc).expect("golden fixture must satisfy the schema pin");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_f64),
        Some(SCHEMA_VERSION as f64)
    );
    assert_eq!(doc.get("per_engine").unwrap().keys(), ENGINES);
}

#[test]
fn golden_large_arm_did_real_out_of_core_work() {
    // At the golden seed the sharded arm is pinned to have fetched real
    // candidates through the buffer pools, not just opened the corpus.
    let large = golden();
    let get = |key: &str| {
        large
            .get("large")
            .and_then(|l| l.get(key))
            .and_then(Json::as_f64)
            .expect("large field present")
    };
    assert!(get("pager_reads") > 0.0, "no query-time pager traffic");
    assert!(get("verified") > 0.0, "no candidates verified");
    assert!(get("pool_misses") > get("resident_frames"));
}

#[test]
fn smoke_run_matches_the_golden_fixture_outside_elapsed_fields() {
    assert_same("", &golden(), &fresh());
}

#[test]
fn same_seed_runs_are_deterministic_except_elapsed() {
    assert_same("", &fresh(), &fresh());
}

#[test]
fn different_seed_changes_the_workload() {
    // Sanity check that the determinism pin is non-vacuous: the seed really
    // drives the counters.
    let a = bench::run(&BenchConfig::smoke(GOLDEN_SEED), "c").expect("run a");
    let b = bench::run(&BenchConfig::smoke(GOLDEN_SEED + 1), "c").expect("run b");
    let cells = |doc: &Json| {
        doc.get("per_engine")
            .and_then(|e| e.get("naive-scan"))
            .and_then(|e| e.get("cascade_off"))
            .and_then(|e| e.get("dtw_cells"))
            .and_then(Json::as_f64)
            .expect("dtw_cells present")
    };
    assert_ne!(cells(&a), cells(&b));
}
