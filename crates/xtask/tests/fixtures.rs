//! Known-bad fixtures, one per rule, proving every detector fires where it
//! should — and the `tw-allow` etiquette tests proving suppression is
//! line-exact (trailing comment = same line, standalone comment = next line
//! only, missing reason or unknown rule = `bad-allow`, never a suppression).

use xtask::rules::{analyze_source, FileClass};

/// Active (non-suppressed) findings as `(line, rule)` pairs.
fn active(file: &str, src: &str, class: FileClass) -> Vec<(u32, &'static str)> {
    analyze_source(file, src, class)
        .into_iter()
        .filter(|v| v.suppressed.is_none())
        .map(|v| (v.line, v.rule))
        .collect()
}

fn lib(src: &str) -> Vec<(u32, &'static str)> {
    active("crates/core/src/fixture.rs", src, FileClass::library())
}

fn fmt_file(src: &str) -> Vec<(u32, &'static str)> {
    let class = FileClass {
        library: true,
        format: true,
        crate_root: false,
    };
    active("crates/storage/src/codec.rs", src, class)
}

// ---------------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------------

#[test]
fn unwrap_in_library_code_fires() {
    let got = lib("fn f(v: Option<u32>) -> u32 { v.unwrap() }\n");
    assert_eq!(got, vec![(1, "unwrap")]);
}

#[test]
fn expect_in_library_code_fires() {
    let got = lib("fn f(v: Option<u32>) -> u32 { v.expect(\"present\") }\n");
    assert_eq!(got, vec![(1, "expect")]);
}

#[test]
fn panic_family_macros_fire() {
    let src = "fn f(n: u32) {\n\
               panic!(\"boom\");\n\
               unreachable!();\n\
               todo!();\n\
               unimplemented!();\n\
               }\n";
    let got = lib(src);
    assert_eq!(
        got,
        vec![(2, "panic"), (3, "panic"), (4, "panic"), (5, "panic")]
    );
}

#[test]
fn slice_indexing_fires_but_slice_patterns_do_not() {
    assert_eq!(
        lib("fn f(v: &[u8]) -> u8 { v[0] }\n"),
        vec![(1, "slice-index")]
    );
    // A slice *type* and a `let`-bound array literal are not index expressions.
    assert_eq!(lib("fn f() { let v = [0u8; 4]; drop(v); }\n"), vec![]);
}

// ---------------------------------------------------------------------------
// float-safety
// ---------------------------------------------------------------------------

#[test]
fn float_literal_comparison_fires_either_side() {
    assert_eq!(
        lib("fn f(x: f64) -> bool { x == 0.0 }\n"),
        vec![(1, "float-eq")]
    );
    assert_eq!(
        lib("fn f(x: f64) -> bool { 1.5 != x }\n"),
        vec![(1, "float-eq")]
    );
}

#[test]
fn variable_to_variable_comparison_is_left_to_clippy() {
    // The lexical pass cannot see types; `float_cmp` in the workspace
    // `[lints]` table covers the variable == variable case.
    assert_eq!(lib("fn f(x: f64, y: f64) -> bool { x == y }\n"), vec![]);
}

#[test]
fn partial_cmp_unwrap_and_sort_sinks_fire() {
    assert_eq!(
        lib("fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }\n"),
        // The `.unwrap()` itself also trips the panic-freedom rule.
        vec![(1, "partial-cmp"), (1, "unwrap")]
    );
    assert_eq!(
        lib("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n"),
        vec![(1, "partial-cmp"), (1, "partial-cmp"), (1, "unwrap")]
    );
    // total_cmp is the sanctioned comparator.
    assert_eq!(
        lib("fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n"),
        vec![]
    );
}

// ---------------------------------------------------------------------------
// format-stability (format files only)
// ---------------------------------------------------------------------------

#[test]
fn casts_fire_only_in_format_files() {
    let src = "fn f(n: u64) -> u32 { n as u32 }\n";
    assert_eq!(fmt_file(src), vec![(1, "cast")]);
    assert_eq!(lib(src), vec![]);
}

#[test]
fn endianness_fires_only_in_format_files() {
    let src = "fn f(x: u32) -> [u8; 4] { x.to_be_bytes() }\n";
    assert_eq!(fmt_file(src), vec![(1, "endianness")]);
    assert_eq!(lib(src), vec![]);
    // Little-endian is the format's byte order and passes.
    assert_eq!(
        fmt_file("fn f(x: u32) -> [u8; 4] { x.to_le_bytes() }\n"),
        vec![]
    );
}

// ---------------------------------------------------------------------------
// error-hygiene
// ---------------------------------------------------------------------------

#[test]
fn boxed_error_in_public_signature_fires() {
    let src = "pub fn f() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }\n";
    assert_eq!(lib(src), vec![(1, "boxed-error")]);
}

#[test]
fn map_err_stringify_fires() {
    let src = "fn f(r: Result<(), StoreError>) -> Result<(), String> {\n\
               r.map_err(|e: StoreError| e.to_string())\n\
               }\n";
    assert_eq!(lib(src), vec![(2, "error-stringify")]);
}

// ---------------------------------------------------------------------------
// unsafe
// ---------------------------------------------------------------------------

#[test]
fn unsafe_block_fires() {
    let got = lib("fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
    assert!(got.contains(&(1, "unsafe-code")), "{got:?}");
}

#[test]
fn crate_root_without_forbid_unsafe_fires() {
    let class = FileClass {
        library: true,
        format: false,
        crate_root: true,
    };
    assert_eq!(
        active("crates/core/src/lib.rs", "pub mod x;\n", class),
        vec![(1, "forbid-unsafe")]
    );
    assert_eq!(
        active(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n",
            class
        ),
        vec![]
    );
}

// ---------------------------------------------------------------------------
// test-code exemption
// ---------------------------------------------------------------------------

#[test]
fn cfg_test_modules_and_test_fns_are_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n fn h(v: Option<u32>) -> u32 { v.unwrap() }\n}\n";
    assert_eq!(lib(src), vec![]);
    let src = "#[test]\nfn t() { None::<u32>.unwrap(); }\n";
    assert_eq!(lib(src), vec![]);
    // ... but library code *after* a test module is still analyzed.
    let src = "#[cfg(test)]\nmod tests {}\nfn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(lib(src), vec![(3, "unwrap")]);
}

// ---------------------------------------------------------------------------
// tw-allow etiquette
// ---------------------------------------------------------------------------

#[test]
fn trailing_allow_suppresses_its_own_line() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // tw-allow(unwrap): fixture reason\n";
    assert_eq!(lib(src), vec![]);
    // The finding is still recorded, just marked suppressed.
    let all = analyze_source("crates/core/src/fixture.rs", src, FileClass::library());
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].suppressed.as_deref(), Some("fixture reason"));
}

#[test]
fn standalone_allow_suppresses_only_the_next_line() {
    let src = "// tw-allow(unwrap): fixture reason\n\
               fn f(v: Option<u32>) -> u32 { v.unwrap() }\n\
               fn g(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(lib(src), vec![(3, "unwrap")]);
    // A blank line between the comment and the code breaks adjacency.
    let src = "// tw-allow(unwrap): fixture reason\n\n\
               fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(lib(src), vec![(3, "unwrap")]);
}

#[test]
fn allow_only_covers_the_named_rule() {
    let src = "// tw-allow(expect): wrong rule for this line\n\
               fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(lib(src), vec![(2, "unwrap")]);
}

#[test]
fn allow_with_unknown_rule_is_a_bad_allow_not_a_suppression() {
    let src = "// tw-allow(unrwap): typo in the rule name\n\
               fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let got = lib(src);
    assert_eq!(got, vec![(1, "bad-allow"), (2, "unwrap")]);
}

#[test]
fn allow_without_reason_is_a_bad_allow_not_a_suppression() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // tw-allow(unwrap)\n";
    let got = lib(src);
    assert_eq!(got, vec![(1, "bad-allow"), (1, "unwrap")]);
}

#[test]
fn multi_rule_allow_covers_each_named_rule() {
    let src =
        "fn f(v: &[f64]) -> bool { v[0] == 0.0 } // tw-allow(slice-index, float-eq): fixture\n";
    assert_eq!(lib(src), vec![]);
}
