//! Fixture tests for the symbolic rule families (`lock-order`,
//! `lock-blocking`, `cancel-coverage`, `stats-ledger`).
//!
//! Each test feeds synthetic sources through [`xtask::run_sources`] — the
//! exact pipeline behind `cargo run -p xtask -- analyze` — and asserts the
//! rule fires on the bad shape and stays silent on the good one. The
//! `tw-allow` tests pin the suppression etiquette for the new rule names:
//! symbolic findings honour the same trailing/standalone comment forms as
//! the lexical rules, and unknown rule names still trip `bad-allow`.

use std::path::Path;

use xtask::rules::{FileClass, Violation};
use xtask::{run_sources, Report, Source};

fn report(files: &[(&str, &str)]) -> Report {
    let sources: Vec<Source> = files
        .iter()
        .map(|(rel, text)| Source {
            rel: (*rel).to_string(),
            text: (*text).to_string(),
            class: FileClass::library(),
        })
        .collect();
    run_sources(Path::new("."), &sources)
}

fn active<'a>(report: &'a Report, rule: &str) -> Vec<&'a Violation> {
    report.active().filter(|v| v.rule == rule).collect()
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

#[test]
fn lock_order_cycle_fires() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "impl S {\n\
         fn append(&self) { let wal = self.wal.lock(); self.meta.lock().bump(); }\n\
         fn rotate(&self) { let meta = self.meta.lock(); self.wal.lock().seal(); }\n\
         }\n",
    )]);
    let hits = active(&r, "lock-order");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("cycle"), "{}", hits[0].message);
    assert!(
        hits[0].message.contains("meta") && hits[0].message.contains("wal"),
        "{}",
        hits[0].message
    );
}

#[test]
fn lock_order_consistent_dag_passes() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "impl S {\n\
         fn append(&self) { let wal = self.wal.lock(); self.meta.lock().bump(); }\n\
         fn rotate(&self) { let wal = self.wal.lock(); self.meta.lock().seal(); }\n\
         }\n",
    )]);
    assert!(active(&r, "lock-order").is_empty());
}

#[test]
fn lock_order_self_reacquire_fires() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "impl S { fn f(&self) { let m = self.meta.lock(); self.meta.lock().bump(); } }\n",
    )]);
    let hits = active(&r, "lock-order");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].message.contains("re-acquired"),
        "{}",
        hits[0].message
    );
}

#[test]
fn lock_order_cycle_through_call_resolution_fires() {
    // `append` holds `wal` and calls `self.refresh()`, whose body (in another
    // file) acquires `meta`; `rotate` orders them the other way around.
    let r = report(&[
        (
            "crates/core/src/a.rs",
            "impl S {\n\
             fn append(&self) { let wal = self.wal.lock(); self.refresh(); }\n\
             fn rotate(&self) { let meta = self.meta.lock(); self.wal.lock().seal(); }\n\
             }\n",
        ),
        (
            "crates/core/src/b.rs",
            "impl S { fn refresh(&self) { self.meta.lock().bump(); } }\n",
        ),
    ]);
    let hits = active(&r, "lock-order");
    assert_eq!(hits.len(), 1, "{hits:?}");
    // The wal → meta half of the cycle only exists through the resolved
    // `refresh()` call; detecting the cycle at all proves resolution worked.
    assert!(hits[0].message.contains("cycle"), "{}", hits[0].message);
    assert!(
        hits[0].message.contains("meta") && hits[0].message.contains("wal"),
        "{}",
        hits[0].message
    );
}

#[test]
fn lock_order_ignores_foreign_receiver_methods() {
    // `meta.tail.len()` resolving by bare name to a method that locks would
    // fabricate an edge; only `self.x()` / free calls resolve.
    let r = report(&[(
        "crates/core/src/a.rs",
        "impl S {\n\
         fn snapshot(&self) { let meta = self.meta.lock(); let n = tail.len(); use_it(n); }\n\
         fn len(&self) -> usize { self.meta.lock().len }\n\
         }\n",
    )]);
    assert!(active(&r, "lock-order").is_empty());
}

// ---------------------------------------------------------------------------
// lock-blocking
// ---------------------------------------------------------------------------

#[test]
fn guard_held_across_blocking_call_fires() {
    let r = report(&[(
        "crates/storage/src/a.rs",
        "impl S { fn flush(&self) { let inner = self.inner.lock(); self.pager.sync(); } }\n",
    )]);
    let hits = active(&r, "lock-blocking");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].message.contains("`inner` guard") && hits[0].message.contains("sync"),
        "{}",
        hits[0].message
    );
}

#[test]
fn blocking_through_the_guard_itself_is_exempt() {
    // Committing through the WAL guard is the lock's purpose.
    let r = report(&[(
        "crates/storage/src/a.rs",
        "impl S { fn append(&self) { let wal = self.wal.lock(); wal.commit(); } }\n",
    )]);
    assert!(active(&r, "lock-blocking").is_empty());
}

#[test]
fn temporary_guard_consumed_in_statement_does_not_fire() {
    // `.lock().clone()` releases the guard within the statement: the binding
    // is a value, and sleeping afterwards holds nothing.
    let r = report(&[(
        "crates/storage/src/a.rs",
        "impl S { fn f(&self) { let governor = self.governor.lock().clone(); \
         self.clock.sleep(nap); governor.observe(); } }\n",
    )]);
    assert!(active(&r, "lock-blocking").is_empty());
}

// ---------------------------------------------------------------------------
// cancel-coverage
// ---------------------------------------------------------------------------

#[test]
fn ungoverned_charging_loop_fires() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "fn scan(rows: &[Row], counters: &Counters) {\n\
         for row in rows { counters.add_dtw_cells(row.cells); }\n\
         }\n",
    )]);
    let hits = active(&r, "cancel-coverage");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 2);
}

#[test]
fn discarded_charge_result_still_fires() {
    // `let _ = token.charge_cells(n)` accrues but never observes the
    // should-cancel flag: the loop is still ungoverned.
    let r = report(&[(
        "crates/core/src/a.rs",
        "fn scan(rows: &[Row], token: &CancelToken) {\n\
         for row in rows { let _ = token.charge_cells(row.cells); }\n\
         }\n",
    )]);
    assert_eq!(active(&r, "cancel-coverage").len(), 1);
}

#[test]
fn consumed_charge_in_loop_passes() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "fn scan(rows: &[Row], token: &CancelToken) {\n\
         for row in rows { if token.charge_cells(row.cells) { return; } }\n\
         }\n",
    )]);
    assert!(active(&r, "cancel-coverage").is_empty());
}

#[test]
fn cancelled_poll_in_loop_passes() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "fn scan(rows: &[Row], token: &CancelToken, counters: &Counters) {\n\
         for row in rows { if token.cancelled() { break; } \
         counters.add_dtw_cells(row.cells); }\n\
         }\n",
    )]);
    assert!(active(&r, "cancel-coverage").is_empty());
}

#[test]
fn loop_charging_through_callee_fires() {
    // One level of call resolution: the loop body looks innocent, but the
    // callee (another file) charges the meter and never polls.
    let r = report(&[
        (
            "crates/core/src/a.rs",
            "fn drive(rows: &[Row]) { for row in rows { kernel(row); } }\n",
        ),
        (
            "crates/core/src/b.rs",
            "fn kernel(row: &Row) { row.counters.add_dtw_cells(row.cells); }\n",
        ),
    ]);
    let hits = active(&r, "cancel-coverage");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/a.rs");
}

#[test]
fn loop_polling_through_callee_passes() {
    // The callee consumes its charge result, so the driving loop is governed
    // transitively — flagging it would only breed spurious allows.
    let r = report(&[
        (
            "crates/core/src/a.rs",
            "fn drive(rows: &[Row]) { for row in rows { if kernel(row) { break; } } }\n",
        ),
        (
            "crates/core/src/b.rs",
            "fn kernel(row: &Row) -> bool { \
             if row.token.charge_cells(row.cells) { return true; } false }\n",
        ),
    ]);
    assert!(active(&r, "cancel-coverage").is_empty());
}

// ---------------------------------------------------------------------------
// stats-ledger
// ---------------------------------------------------------------------------

const BALANCED_STATS: &str = "\
// tw-ledger(scope): S
// tw-ledger(equation): candidates = verified + pruned
// tw-ledger(cost): cells
pub struct S { pub candidates: u64, pub verified: u64, pub pruned: u64, pub cells: u64 }
impl S {
    pub fn accounting_balanced(&self) -> bool { self.candidates == self.verified + self.pruned }
    pub fn merge(&mut self, o: &S) {
        self.candidates += o.candidates;
        self.verified += o.verified;
        self.pruned += o.pruned;
        self.cells += o.cells;
    }
}
";

#[test]
fn balanced_manifest_passes() {
    let r = report(&[("crates/core/src/stats.rs", BALANCED_STATS)]);
    assert!(
        active(&r, "stats-ledger").is_empty(),
        "{:?}",
        active(&r, "stats-ledger")
    );
}

#[test]
fn undeclared_counter_field_fires() {
    let src = BALANCED_STATS.replace("pub cells: u64 }", "pub cells: u64, pub orphan: u64 }");
    let r = report(&[("crates/core/src/stats.rs", &src)]);
    let hits = active(&r, "stats-ledger");
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`orphan`") && v.message.contains("not declared")),
        "{hits:?}"
    );
}

#[test]
fn stale_manifest_term_fires() {
    let src = BALANCED_STATS.replace(
        "// tw-ledger(cost): cells",
        "// tw-ledger(cost): cells, ghost",
    );
    let r = report(&[("crates/core/src/stats.rs", &src)]);
    let hits = active(&r, "stats-ledger");
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`ghost`") && v.message.contains("no counter field")),
        "{hits:?}"
    );
}

#[test]
fn counter_missing_from_merge_fires() {
    let src = BALANCED_STATS.replace("        self.cells += o.cells;\n", "");
    let r = report(&[("crates/core/src/stats.rs", &src)]);
    let hits = active(&r, "stats-ledger");
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`cells`") && v.message.contains("merge()")),
        "{hits:?}"
    );
}

#[test]
fn equation_term_unchecked_by_balance_fires() {
    let src = BALANCED_STATS.replace(
        "self.candidates == self.verified + self.pruned",
        "self.candidates == self.verified + self.verified",
    );
    let r = report(&[("crates/core/src/stats.rs", &src)]);
    let hits = active(&r, "stats-ledger");
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`pruned`") && v.message.contains("not checked")),
        "{hits:?}"
    );
}

#[test]
fn rule_is_inert_without_a_manifest() {
    // No tw-ledger directives anywhere: nothing to reconcile against. The
    // workspace self-check pins the real manifest's existence separately.
    let r = report(&[(
        "crates/core/src/stats.rs",
        "pub struct S { pub stray: u64 }\n",
    )]);
    assert!(active(&r, "stats-ledger").is_empty());
}

// ---------------------------------------------------------------------------
// tw-allow etiquette for the new rule names
// ---------------------------------------------------------------------------

#[test]
fn trailing_allow_suppresses_symbolic_finding() {
    let r = report(&[(
        "crates/core/src/a.rs",
        "fn scan(rows: &[Row], counters: &Counters) {\n\
         for row in rows { // tw-allow(cancel-coverage): bulk load is unbounded by design\n\
         counters.add_dtw_cells(row.cells); }\n\
         }\n",
    )]);
    assert!(active(&r, "cancel-coverage").is_empty());
    let suppressed: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "cancel-coverage" && v.suppressed.is_some())
        .collect();
    assert_eq!(suppressed.len(), 1, "{suppressed:?}");
    assert_eq!(
        suppressed[0].suppressed.as_deref(),
        Some("bulk load is unbounded by design")
    );
}

#[test]
fn standalone_allow_suppresses_next_line_symbolic_finding() {
    let r = report(&[(
        "crates/storage/src/a.rs",
        "impl S { fn flush(&self) { let inner = self.inner.lock();\n\
         // tw-allow(lock-blocking): dirty flags and device order must agree\n\
         self.pager.sync(); } }\n",
    )]);
    assert!(active(&r, "lock-blocking").is_empty());
    assert!(r
        .violations
        .iter()
        .any(|v| v.rule == "lock-blocking" && v.suppressed.is_some()));
}

#[test]
fn new_rule_names_are_known_to_bad_allow() {
    // A reasoned allow naming any new rule is legitimate (no bad-allow) …
    let r = report(&[(
        "crates/core/src/a.rs",
        "// tw-allow(lock-order, lock-blocking, cancel-coverage, stats-ledger): fixture\n\
         fn f() {}\n",
    )]);
    assert!(
        active(&r, "bad-allow").is_empty(),
        "{:?}",
        active(&r, "bad-allow")
    );
    // … while a misspelled one still trips it.
    let r = report(&[(
        "crates/core/src/a.rs",
        "// tw-allow(cancel-coverge): typo\nfn f() {}\n",
    )]);
    assert_eq!(active(&r, "bad-allow").len(), 1);
}
