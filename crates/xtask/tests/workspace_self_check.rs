//! Runs the analyzer on this very workspace and pins the policy down:
//!
//! * the committed `analyze-baseline.toml` is *exact* — no regressions, and
//!   no stale entries a `--fix-baseline` run would remove;
//! * the grandfathered debt contains **zero** float-safety and **zero**
//!   format-stability entries (those families are fully burned down);
//! * the core library is panic-macro- and unwrap-free outside `tw-allow`d
//!   lines;
//! * a freshly introduced `.unwrap()` in `crates/core/src/` is reported as a
//!   regression against the committed baseline, which is exactly what makes
//!   `scripts/check.sh` fail.

use std::path::PathBuf;

use xtask::baseline::{self, Baseline};
use xtask::rules::{analyze_source, family_of, FileClass};
use xtask::{walk, Report};

const BASELINE_FILE: &str = "analyze-baseline.toml";

fn workspace() -> (Report, PathBuf) {
    let root = walk::find_root(None).expect("workspace root");
    let report = xtask::run(&root).expect("workspace analysis");
    (report, root)
}

#[test]
fn committed_baseline_is_exact() {
    let (report, root) = workspace();
    let path = root.join(BASELINE_FILE);
    assert!(path.is_file(), "missing committed {BASELINE_FILE}");
    let cmp = report.compare(&path).expect("readable baseline");
    assert!(
        cmp.regressions.is_empty(),
        "workspace has violations over the committed baseline: {:?}",
        cmp.regressions
    );
    assert!(
        cmp.improvements.is_empty(),
        "committed baseline is stale (debt shrank); rerun \
         `cargo run -p xtask -- analyze --fix-baseline`: {:?}",
        cmp.improvements
    );
}

#[test]
fn no_float_safety_or_format_stability_debt() {
    let (report, root) = workspace();
    let base = Baseline::load(&root.join(BASELINE_FILE)).expect("readable baseline");
    for family in ["float-safety", "format-stability"] {
        let baselined: Vec<_> = base
            .entries
            .keys()
            .filter(|(_, rule)| family_of(rule) == family)
            .collect();
        assert!(
            baselined.is_empty(),
            "{family} debt in baseline: {baselined:?}"
        );
        let active: Vec<_> = report
            .active()
            .filter(|v| family_of(v.rule) == family)
            .map(|v| format!("{}:{} [{}]", v.file, v.line, v.rule))
            .collect();
        assert!(active.is_empty(), "active {family} violations: {active:?}");
    }
}

#[test]
fn core_library_is_unwrap_and_panic_free() {
    let (report, _) = workspace();
    let offenders: Vec<_> = report
        .active()
        .filter(|v| matches!(v.rule, "unwrap" | "expect" | "panic"))
        .map(|v| format!("{}:{} [{}]", v.file, v.line, v.rule))
        .collect();
    assert!(
        offenders.is_empty(),
        "library code aborts instead of propagating errors: {offenders:?}"
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let (report, _) = workspace();
    for v in &report.violations {
        if let Some(reason) = &v.suppressed {
            assert!(
                !reason.trim().is_empty(),
                "{}:{} [{}] suppressed without a reason",
                v.file,
                v.line,
                v.rule
            );
        }
    }
}

#[test]
fn fresh_unwrap_in_core_is_a_ratchet_regression() {
    let (report, root) = workspace();
    let rel = "crates/core/src/sequence.rs";
    let mut source = std::fs::read_to_string(root.join(rel)).expect("core source");
    source.push_str("\nfn injected(v: Option<u32>) -> u32 { v.unwrap() }\n");

    // Re-analyze just the edited file and splice its counts into the
    // workspace totals, exactly as a real run over the edited tree would.
    let mut counts = report.counts.clone();
    counts.retain(|(file, _), _| file != rel);
    for v in analyze_source(rel, &source, FileClass::library()) {
        if v.suppressed.is_none() {
            *counts
                .entry((v.file.clone(), v.rule.to_string()))
                .or_insert(0) += 1;
        }
    }

    let base = Baseline::load(&root.join(BASELINE_FILE)).expect("readable baseline");
    let cmp = baseline::compare(&counts, &base);
    assert!(
        cmp.regressions
            .iter()
            .any(|(file, rule, _, _)| file == rel && rule == "unwrap"),
        "injected unwrap not caught: {:?}",
        cmp.regressions
    );
}

// ---------------------------------------------------------------------------
// symbolic pass: policy + seeded mutations against the real tree
// ---------------------------------------------------------------------------

/// Re-runs the full pipeline over the workspace with one file's text edited.
fn run_edited(rel: &str, edit: impl FnOnce(&str) -> String) -> xtask::Report {
    let root = walk::find_root(None).expect("workspace root");
    let files = walk::collect(&root).expect("workspace walk");
    let mut sources: Vec<xtask::Source> = files
        .iter()
        .map(|f| xtask::Source {
            rel: f.rel.clone(),
            text: std::fs::read_to_string(&f.abs).expect("readable source"),
            class: f.class,
        })
        .collect();
    let src = sources
        .iter_mut()
        .find(|s| s.rel == rel)
        .unwrap_or_else(|| panic!("{rel} not in the analyzed set"));
    src.text = edit(&src.text);
    xtask::run_sources(&root, &sources)
}

#[test]
fn symbolic_families_are_clean_with_zero_baseline_debt() {
    let (report, root) = workspace();
    let families = [
        "lock-order",
        "lock-blocking",
        "cancel-coverage",
        "stats-ledger",
    ];
    let active: Vec<_> = report
        .active()
        .filter(|v| families.contains(&v.rule))
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(active.is_empty(), "active symbolic violations: {active:?}");
    // The ratchet holds these families at zero — no grandfathered debt.
    let base = Baseline::load(&root.join(BASELINE_FILE)).expect("readable baseline");
    let baselined: Vec<_> = base
        .entries
        .keys()
        .filter(|(_, rule)| families.contains(&rule.as_str()))
        .collect();
    assert!(
        baselined.is_empty(),
        "symbolic debt in baseline: {baselined:?}"
    );
}

#[test]
fn ledger_manifest_is_pinned_in_stats() {
    // `stats-ledger` is inert without a manifest; pin the real one so it
    // cannot be silently deleted to quiet the rule.
    let root = walk::find_root(None).expect("workspace root");
    let stats =
        std::fs::read_to_string(root.join("crates/core/src/stats.rs")).expect("core stats source");
    for directive in ["tw-ledger(scope)", "tw-ledger(equation)", "tw-ledger(cost)"] {
        assert!(
            stats.contains(directive),
            "crates/core/src/stats.rs lost its `// {directive}: …` manifest line"
        );
    }
}

#[test]
fn committed_baseline_has_no_stale_entries() {
    let root = walk::find_root(None).expect("workspace root");
    let base = Baseline::load(&root.join(BASELINE_FILE)).expect("readable baseline");
    let stale = base.stale_entries(&root);
    assert!(
        stale.is_empty(),
        "baseline names files/rules that no longer exist \
         (run `cargo run -p xtask -- analyze --fix-baseline`): {stale:?}"
    );
}

#[test]
fn dropped_governor_poll_in_dtw_kernel_is_caught() {
    // Seeded mutation: discard the kernel's per-row should-cancel flag. The
    // charging loop in `decide_kernel` is then ungoverned and the analyzer
    // must say so.
    let rel = "crates/core/src/distance/dtw.rs";
    let report = run_edited(rel, |text| {
        assert!(
            text.contains("if token.charge_cells("),
            "kernel poll shape moved; update this mutation"
        );
        text.replace("if token.charge_cells(", "let _ = token.charge_cells(")
    });
    assert!(
        report
            .active()
            .any(|v| v.rule == "cancel-coverage" && v.file == rel),
        "dropped governor poll in {rel} not caught"
    );
}

#[test]
fn reversed_lock_pair_in_ingest_is_caught() {
    // Seeded mutation: acquire `meta` and `wal` in both orders. The global
    // acquisition graph gains a cycle and lock-order must report it.
    let rel = "crates/core/src/ingest.rs";
    let report = run_edited(rel, |text| {
        format!(
            "{text}\nimpl MutationProbe {{\n    \
             fn forward(&self) {{ let meta = self.meta.lock(); self.wal.lock(); }}\n    \
             fn reversed(&self) {{ let wal = self.wal.lock(); self.meta.lock(); }}\n}}\n"
        )
    });
    let hit = report
        .active()
        .find(|v| v.rule == "lock-order")
        .unwrap_or_else(|| panic!("reversed lock pair in {rel} not caught"));
    assert!(hit.message.contains("cycle"), "{}", hit.message);
}
