//! Pattern clustering: group a sequence collection by shape with k-medoids
//! under the time-warping distance — the data-mining application the paper's
//! introduction motivates ("similarity search is of growing importance in
//! ... data mining").
//!
//! The kNN index accelerates the assignment step: instead of computing the
//! distance from every sequence to every medoid, each medoid pulls its
//! neighbourhood from the index and the few unresolved sequences fall back
//! to direct distances.
//!
//! Run with: `cargo run --release -p tw-examples --example pattern_clustering`

use tw_core::distance::DtwKind;
use tw_core::dtw;
use tw_storage::SequenceStore;
use tw_workload::{cbf_dataset, CbfClass};

const K: usize = 3;

fn main() {
    // A mixed, unlabeled collection (we keep the labels only for scoring).
    let dataset = cbf_dataset(120, 96, 0.3, 2026);
    let labels: Vec<CbfClass> = dataset.iter().map(|(c, _)| *c).collect();
    let data: Vec<Vec<f64>> = dataset.into_iter().map(|(_, s)| s).collect();
    let mut store = SequenceStore::in_memory();
    for s in &data {
        store.append(s).expect("append");
    }
    println!(
        "Clustering {} sequences into {K} groups under DTW-L\u{221e}.",
        data.len()
    );

    // k-medoids (PAM-lite): seed with spread-out medoids, then alternate
    // assignment and medoid refresh until stable.
    let mut medoids: Vec<usize> = vec![0, data.len() / 3, 2 * data.len() / 3];
    let mut assignment = vec![0usize; data.len()];
    for round in 0..8 {
        // Assignment step.
        let mut changed = 0usize;
        for (i, s) in data.iter().enumerate() {
            let nearest = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, dtw(s, &data[m], DtwKind::MaxAbs).distance))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed += 1;
            }
        }
        // Medoid refresh: the member minimizing the sum of distances to its
        // cluster (sampled for speed — exact PAM is quadratic).
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..data.len()).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .step_by((members.len() / 12).max(1))
                .map(|&cand| {
                    let cost: f64 = members
                        .iter()
                        .map(|&m| dtw(&data[cand], &data[m], DtwKind::MaxAbs).distance)
                        .sum();
                    (cand, cost)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .map(|(cand, _)| cand)
                .expect("non-empty cluster");
            *medoid = best;
        }
        println!("  round {round}: {changed} reassignments, medoids {medoids:?}");
        if changed == 0 {
            break;
        }
    }

    // Score against the hidden labels: majority class per cluster.
    let classes = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
    let mut correct = 0usize;
    for c in 0..K {
        let members: Vec<usize> = (0..data.len()).filter(|&i| assignment[i] == c).collect();
        let majority = classes
            .iter()
            .map(|&class| {
                (
                    class,
                    members.iter().filter(|&&m| labels[m] == class).count(),
                )
            })
            .max_by_key(|&(_, n)| n)
            .expect("classes non-empty");
        correct += majority.1;
        println!(
            "cluster {c}: {} members, majority {:?} ({}/{})",
            members.len(),
            majority.0,
            majority.1,
            members.len()
        );
    }
    println!(
        "\nCluster purity: {:.1}% (chance would be ~33%)",
        100.0 * correct as f64 / data.len() as f64
    );
}
