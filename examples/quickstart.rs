//! Quickstart: store a handful of sequences, build the TW-Sim-Search index,
//! and run a tolerance query — the paper's Algorithm 1 end to end.
//!
//! Run with: `cargo run --release -p tw-examples --example quickstart`

use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, NaiveScan, SearchEngine, TwSimSearch};
use tw_core::{dtw, Alignment, Candidate, KimBound, LowerBound, PreparedQuery};
use tw_storage::{HardwareModel, SequenceStore};

fn main() {
    // The paper's §1 example pair: different lengths, same shape.
    let s = vec![20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0, 23.0];
    let q = vec![20.0, 20.0, 21.0, 20.0, 23.0];
    println!("Time warping in one line:");
    println!(
        "  D_tw(S, Q)    = {}  (L-inf recurrence; lengths {} vs {})",
        dtw(&s, &q, DtwKind::MaxAbs).distance,
        s.len(),
        q.len()
    );
    let prepared = PreparedQuery::new(&q, DtwKind::MaxAbs, None);
    let lb = KimBound
        .evaluate(
            &prepared,
            &Candidate {
                id: 0,
                values: &s,
                precomputed: None,
            },
        )
        .expect("non-empty query");
    println!("  D_tw-lb(S, Q) = {lb}  (the 4-tuple lower bound)\n");

    // The alignment that realizes the distance: both sequences stretched
    // onto the common axis the paper's Section 1 illustrates.
    println!(
        "Optimal warping alignment:\n{}\n",
        Alignment::compute(&s, &q, DtwKind::MaxAbs).render()
    );

    // A small sequence database on 1 KB pages.
    let mut store = SequenceStore::in_memory();
    let database = vec![
        vec![20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0, 23.0],
        vec![20.0, 20.0, 21.0, 20.0, 23.0],
        vec![19.6, 21.4, 20.2, 23.4],
        vec![5.0, 6.0, 7.0, 8.0],
        vec![40.0, 39.5, 41.0],
        vec![20.5, 21.5, 20.5, 22.5, 23.0],
    ];
    for seq in &database {
        store.append(seq).expect("append sequence");
    }

    // Build the 4-D feature index (First, Last, Greatest, Smallest).
    let engine = TwSimSearch::build(&store).expect("build index");
    println!(
        "Indexed {} sequences in an R-tree of {} nodes (height {}).\n",
        engine.len(),
        engine.tree().node_count(),
        engine.tree().height()
    );

    // Query: find everything within tolerance 0.5 of Q.
    let epsilon = 0.5;
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    let result = engine
        .range_search(&store, &q, epsilon, &opts)
        .expect("query");
    println!("Query {q:?} with tolerance {epsilon}:");
    for m in &result.matches {
        println!(
            "  sequence {} matches at distance {:.3}: {:?}",
            m.id,
            m.distance,
            store.get(m.id).expect("stored sequence")
        );
    }

    // The same answer a full scan would produce — guaranteed, not hoped.
    let naive = NaiveScan
        .range_search(&store, &q, epsilon, &opts)
        .expect("scan");
    assert_eq!(result.ids(), naive.ids());
    println!("\nVerified against Naive-Scan: identical result sets (no false dismissal).");

    // What the filter saved, priced on the paper's 2001 hardware.
    let hw = HardwareModel::icde2001();
    println!(
        "Work: {} of {} sequences verified; index nodes touched: {}; \
         modeled elapsed {:?} vs {:?} for the scan.",
        result.stats.candidates,
        result.stats.db_size,
        result.stats.index_node_accesses,
        result.stats.modeled_elapsed(&hw),
        naive.stats.modeled_elapsed(&hw),
    );
}
