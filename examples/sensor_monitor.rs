//! Sensor-fleet triage: identify which channels of a mixed fleet carry a
//! given waveform family, even though every device runs at its own speed and
//! records for a different duration — exactly the "different sampling rates
//! / different lengths" motivation of the paper's §1.
//!
//! The fleet mixes the three Cylinder–Bell–Funnel families. A clean Bell
//! template is used as the query; time warping absorbs the per-device speed
//! differences, so the search returns the Bell channels and only them.
//!
//! Run with: `cargo run --release -p tw-examples --example sensor_monitor`

use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, NaiveScan, SearchEngine, TwSimSearch};
use tw_storage::SequenceStore;
use tw_workload::{cbf, CbfClass};

fn main() {
    // 240 channels, cycling through the three families, each with its own
    // recording length (speed) and noise.
    let classes = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
    let mut store = SequenceStore::in_memory();
    let mut truth: Vec<CbfClass> = Vec::new();
    for device in 0..240u64 {
        let class = classes[device as usize % 3];
        let len = 96 + (device as usize * 13) % 160; // 96..256 samples
        let channel = cbf(class, len, 0.25, device);
        truth.push(class);
        store.append(&channel).expect("append channel");
    }
    println!(
        "Fleet: {} channels across 3 waveform families, lengths 96..256.",
        store.len()
    );

    // The query template: a clean, noise-free Bell at yet another length.
    let template = cbf(CbfClass::Bell, 128, 0.0, 9999);

    let engine = TwSimSearch::build(&store).expect("build index");
    let epsilon = 1.6;
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    let result = engine
        .range_search(&store, &template, epsilon, &opts)
        .expect("triage query");

    let flagged = result.ids();
    let bells: Vec<u64> = truth
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == CbfClass::Bell)
        .map(|(i, _)| i as u64)
        .collect();
    let hits = flagged.iter().filter(|id| bells.contains(id)).count();
    let false_alarms = flagged.len() - hits;
    println!(
        "\nTolerance {epsilon}: flagged {} channels; {hits}/{} true Bell \
         channels found, {false_alarms} non-Bell channels flagged.",
        flagged.len(),
        bells.len()
    );
    println!(
        "Precision {:.1}%, recall {:.1}% (shape match under warping; \
         imperfections come from per-device amplitude jitter, not timing).",
        100.0 * hits as f64 / flagged.len().max(1) as f64,
        100.0 * hits as f64 / bells.len().max(1) as f64,
    );

    // The guarantee: the index answer equals the exhaustive scan answer.
    let naive = NaiveScan
        .range_search(&store, &template, epsilon, &opts)
        .expect("scan");
    assert_eq!(naive.ids(), flagged);
    println!(
        "\nIndex verified {} of {} channels ({} index nodes); the scan \
         verified all {}. Identical answers.",
        result.stats.candidates,
        result.stats.db_size,
        result.stats.index_node_accesses,
        naive.stats.dtw_invocations,
    );
}
