//! Stock screening: "find stocks whose recent price pattern resembles this
//! one, even if the moves play out on different time scales" — the paper's
//! motivating application (S&P 500 data, §5.1).
//!
//! Builds a 545-series stock database, picks a reference stock, and uses
//! both the tolerance search and the kNN extension to shortlist lookalikes.
//!
//! Run with: `cargo run --release -p tw-examples --example stock_screening`

use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, SearchEngine, TwSimSearch};
use tw_storage::{HardwareModel, SequenceStore};
use tw_workload::{generate_stocks, normalize_to_unit_range, StockConfig};

fn main() {
    // The paper's data-set shape: 545 series, average length 231 trading
    // days (a synthetic stand-in for the no-longer-available S&P feed).
    let mut data = generate_stocks(&StockConfig::sp500(), 42);
    normalize_to_unit_range(&mut data, 1.0, 10.0);

    let mut store = SequenceStore::in_memory();
    for s in &data {
        store.append(s).expect("append series");
    }
    let engine = TwSimSearch::build(&store).expect("build index");
    println!(
        "Screening universe: {} series, avg length {:.0}, stored on {} pages of 1 KB.",
        store.len(),
        data.iter().map(|s| s.len() as f64).sum::<f64>() / data.len() as f64,
        store.data_pages()
    );

    // Reference pattern: stock #17's full history, as a query.
    let reference_id = 17u64;
    let query = store.get(reference_id).expect("reference series");
    println!(
        "\nReference: series {reference_id} (len {}, range {:.2}..{:.2})",
        query.len(),
        query.iter().cloned().fold(f64::INFINITY, f64::min),
        query.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );

    // Tolerance screen: every series whose warped trajectory stays within
    // 0.15 normalized price units of the reference at every aligned point.
    let epsilon = 0.15;
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    let result = engine
        .range_search(&store, &query, epsilon, &opts)
        .expect("screen");
    println!(
        "\nWithin tolerance {epsilon}: {} series",
        result.matches.len()
    );
    for m in result.matches.iter().take(10) {
        let status = if m.id == reference_id {
            " (the reference itself)"
        } else {
            ""
        };
        println!("  series {:>3}  distance {:.4}{status}", m.id, m.distance);
    }

    // kNN screen: the 5 closest series regardless of tolerance.
    let (neighbors, knn_stats) = engine.knn(&store, &query, 5, DtwKind::MaxAbs).expect("knn");
    println!("\nTop-5 nearest series under time warping:");
    for n in &neighbors {
        println!("  series {:>3}  distance {:.4}", n.id, n.distance);
    }

    let hw = HardwareModel::icde2001();
    println!(
        "\nCost: tolerance screen verified {}/{} series ({} index nodes, modeled {:?}); \
         kNN verified {} candidates.",
        result.stats.candidates,
        result.stats.db_size,
        result.stats.index_node_accesses,
        result.stats.modeled_elapsed(&hw),
        knn_stats.dtw_invocations,
    );
}
