//! Subsequence explorer: the §6 extension in action. Index sliding windows
//! of a long recording and find every place a short query motif occurs,
//! under time warping.
//!
//! Run with: `cargo run --release -p tw-examples --example subsequence_explorer`

use tw_core::distance::DtwKind;
use tw_core::search::{SubsequenceIndex, WindowSpec};
use tw_storage::SequenceStore;
use tw_workload::{cbf, CbfClass};

fn main() {
    // Three long recordings, each a concatenation of Cylinder-Bell-Funnel
    // events over a quiet baseline.
    let mut store = SequenceStore::in_memory();
    let classes = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
    for rec in 0..3u64 {
        let mut recording = Vec::new();
        for event in 0..6 {
            let class = classes[(rec as usize + event) % 3];
            recording.extend(cbf(class, 128, 0.15, rec * 100 + event as u64));
        }
        store.append(&recording).expect("append recording");
    }
    println!(
        "Indexed {} recordings of {} samples each.",
        store.len(),
        store.sequence_len(0).unwrap()
    );

    // Window index: lengths 32..128 on a geometric ladder, stride 8.
    let spec = WindowSpec::new(32, 128, 2, 8).expect("window spec");
    let index = SubsequenceIndex::build(&store, spec).expect("build window index");
    println!(
        "Window index: {} windows over lengths {:?}.",
        index.window_count(),
        index.spec().lengths()
    );

    // The query motif: a clean bell event.
    let motif = cbf(CbfClass::Bell, 96, 0.0, 7);
    let epsilon = 1.2;
    let (matches, stats) = index
        .search(&store, &motif, epsilon, DtwKind::MaxAbs)
        .expect("motif query");

    // Collapse overlapping hits: keep the best-scoring window per
    // non-overlapping region of each recording.
    let mut best: Vec<&tw_core::SubsequenceMatch> = Vec::new();
    let mut sorted: Vec<&tw_core::SubsequenceMatch> = matches.iter().collect();
    sorted.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite"));
    for m in sorted {
        let overlaps = best
            .iter()
            .any(|b| b.id == m.id && m.offset < b.offset + b.len && b.offset < m.offset + m.len);
        if !overlaps {
            best.push(m);
        }
    }
    best.sort_by_key(|m| (m.id, m.offset));

    println!(
        "\nBell-like regions within tolerance {epsilon} ({} raw window hits, \
         {} distinct regions):",
        matches.len(),
        best.len()
    );
    for m in &best {
        println!(
            "  recording {}  samples {:>4}..{:<4}  distance {:.3}",
            m.id,
            m.offset,
            m.offset + m.len,
            m.distance
        );
    }
    println!(
        "\nWork: {} candidate windows verified out of {} indexed; {} index \
         nodes touched.",
        stats.dtw_invocations,
        index.window_count(),
        stats.index_node_accesses
    );
}
