#!/usr/bin/env bash
# The repo's CI gate: formatting, lints (warnings are errors), full tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "All checks passed."
