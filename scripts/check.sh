#!/usr/bin/env bash
# The repo's CI gate: formatting, lints (warnings are errors), full tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The project's own lints — the lexical families (panic-freedom,
# float-safety, format-stability, error-hygiene) plus the symbolic ones
# (lock-order, cancel-coverage, stats-ledger) — with the
# analyze-baseline.toml ratchet: fails on any violation the committed
# baseline does not grandfather. After intentional changes, regenerate with
# `cargo run -p xtask -- analyze --fix-baseline`. The SARIF report is the
# machine-readable artifact CI uploads; the text run prints per-pass wall
# times so a slow analyzer layer is visible in the log.
echo "==> tw-analyze (project lints + ratchet)"
mkdir -p target
cargo run -q -p xtask --offline -- analyze --format=sarif --timings \
  > target/tw-analyze.sarif
cargo run -q -p xtask --offline -- analyze

echo "==> cargo test -q"
cargo test -q --workspace --offline

# One smoke cell of the seeded bench matrix: asserts the query-stats
# accounting invariant and exact-engine agreement on every query, then
# re-validates the emitted BENCH_search.json against the pinned schema
# (DESIGN.md §10). Written to a scratch file so CI never dirties the
# committed full-matrix BENCH_search.json at the repo root.
echo "==> bench smoke + schema validation"
BENCH_SMOKE_OUT="$(mktemp -t BENCH_search.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_OUT"' EXIT
cargo run -q -p xtask --offline -- bench --smoke --out "$BENCH_SMOKE_OUT"
cargo run -q -p xtask --offline -- validate-bench "$BENCH_SMOKE_OUT"

# The sharded out-of-core arm at smoke scale: same code path as the
# million-sequence `bench --large` tier (CorpusSharder ingest, fan-out
# query through per-shard buffer pools), shrunk so CI proves the I/O model
# — the schema validator pins pool_misses > resident frames — in seconds.
echo "==> bench large (smoke scale) + schema validation"
BENCH_LARGE_OUT="$(mktemp -t BENCH_large.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_OUT" "$BENCH_LARGE_OUT"' EXIT
cargo run -q -p xtask --offline -- bench --large --smoke --out "$BENCH_LARGE_OUT"
cargo run -q -p xtask --offline -- validate-bench "$BENCH_LARGE_OUT"

# The network-service load gate: 8 concurrent clients over a seeded sharded
# corpus against the in-process tw-net server (DESIGN.md §15). Asserts zero
# protocol errors and that both accounting ledgers — the server's frame
# ledger and the aggregate QueryStats — balance exactly; the JSON report
# (latency percentiles, shed rate, partial-result rate) is uploaded as a CI
# artifact.
echo "==> net loadtest (smoke)"
cargo run -q -p xtask --offline -- loadtest --smoke --out target/loadtest.json

# The fault-schedule matrix runs fixed seeds (the schedules are deterministic
# SplitMix64 streams), so this pass is reproducible bit-for-bit. It is part of
# the workspace test run above; running it again by name makes a regression
# show up under its own heading in CI logs.
echo "==> fault injection (fixed seeds)"
cargo test -q -p tw-integration --offline --test fault_injection

# Seeded writer/reader interleavings at 1/2/4 reader threads: every snapshot
# query is checked exact against a direct-DTW replay of that epoch's corpus.
# Also part of the workspace run; named here for its own CI heading.
echo "==> snapshot-consistency stress (seeded interleavings)"
cargo test -q -p tw-integration --offline --test snapshot_stress

# Includes the concurrent WAL-backed section: the writer is killed (abort
# hook and real SIGKILL) while reader threads query pinned snapshots, and
# recovery must replay every acknowledged append.
echo "==> crash recovery"
"$(dirname "$0")/crashtest.sh"

echo "All checks passed."
