#!/usr/bin/env bash
# Crash-recovery gate: kill the CLI writer at several points mid-ingest and
# assert the store is still readable (recovery trims at the damage, keeps the
# acknowledged prefix, and verify-store / info / query all succeed).
#
# The deterministic kill points use the TWSEARCH_CRASH_AFTER_APPENDS hook in
# `twsearch generate`, which calls abort() — no flush, no cleanup — after N
# appends. A final best-effort case delivers a real SIGKILL mid-run.
#
# The concurrent section runs the WAL-backed `twsearch ingest` path instead:
# reader threads query pinned snapshots while the writer is killed mid-ingest,
# and recovery must replay every *acknowledged* (acked-line) append.
set -euo pipefail
cd "$(dirname "$0")/.."

TW="target/release/twsearch"
if [[ ! -x "$TW" ]]; then
    echo "==> building twsearch (release)"
    cargo build --release --offline -p tw-cli
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/tw-crashtest.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

check_readable() {
    local db="$1" label="$2"
    "$TW" verify-store --db "$db" > "$WORK/verify.out"
    grep -q "integrity" "$WORK/verify.out" || {
        echo "FAIL($label): verify-store produced no integrity line"; exit 1; }
    "$TW" info --db "$db" > /dev/null
    # A query over the recovered store must also work (scan path).
    "$TW" query --db "$db" --eps 1000 --values 5,5,5 > /dev/null
    echo "    $label: recovered store is readable ($(grep integrity "$WORK/verify.out" | tr -s ' '))"
}

# Deterministic kill points: right after the first append, mid-pool, just
# before and after the periodic flush boundary (every 1024 appends).
for n in 1 100 1023 1024 1500; do
    db="$WORK/abort-$n.tws"
    echo "==> abort after $n appends"
    rc=0
    TWSEARCH_CRASH_AFTER_APPENDS=$n \
        "$TW" generate --kind walk --count 2000 --len 32 --seed 11 --out "$db" \
        > /dev/null 2>&1 || rc=$?
    [[ $rc -ne 0 ]] || { echo "FAIL: writer was supposed to crash"; exit 1; }
    check_readable "$db" "abort@$n"
done

# Best-effort real SIGKILL mid-ingest: timing-dependent, so accept either a
# recoverable store or a file too young to contain a full header page.
db="$WORK/sigkill.tws"
echo "==> SIGKILL mid-generate"
"$TW" generate --kind walk --count 60000 --len 64 --seed 13 --out "$db" \
    > /dev/null 2>&1 &
writer=$!
while [[ ! -s "$db" ]] && kill -0 "$writer" 2>/dev/null; do sleep 0.02; done
sleep 0.05
if kill -9 "$writer" 2>/dev/null; then
    wait "$writer" 2>/dev/null || true
    if [[ $(stat -c%s "$db" 2>/dev/null || echo 0) -ge 1024 ]]; then
        check_readable "$db" "sigkill"
    else
        echo "    sigkill: writer died before the header page was durable (ok)"
    fi
else
    echo "    sigkill: writer finished before the signal landed (ok)"
fi

# Concurrent WAL-backed ingest: the writer appends through the WAL while
# reader threads continuously pin snapshots and query them (the CLI checks
# every outcome for snapshot consistency in-process). Kill the whole process
# after exactly N acknowledged appends and assert that recovery replays every
# acked append — the WAL's durability contract: acknowledged means never lost.
concurrent_recover_and_check() {
    local dir="$1" acked="$2" label="$3"
    local db="$dir/db.tws" wal="$dir/db.twl" idx="$dir/db.twr"
    # Pre-recovery audit: the WAL must anchor every acknowledged append.
    # (It may anchor one more: a kill can land between the WAL commit and
    # the acked line reaching the captured output — never the reverse.)
    "$TW" verify-store --db "$db" --wal "$wal" > "$dir/verify-pre.out"
    local recoverable
    recoverable=$(grep '^recoverable' "$dir/verify-pre.out" | awk '{print $2}')
    [[ "$recoverable" -ge "$acked" ]] || {
        echo "FAIL($label): acked $acked append(s) but only $recoverable recoverable"
        cat "$dir/verify-pre.out"; exit 1; }
    # Recover (replay + index rebuild/validation + WAL truncate)…
    "$TW" ingest --db "$db" --wal "$wal" --index "$idx" --count 0 > "$dir/recover.out"
    grep -q "opened $recoverable sequence(s)" "$dir/recover.out" || {
        echo "FAIL($label): recovery did not restore $recoverable sequence(s)"
        cat "$dir/recover.out"; exit 1; }
    # …then the full post-recovery sweep: store, index, and an empty WAL.
    "$TW" verify-store --db "$db" --index "$idx" --wal "$wal" > "$dir/verify-post.out"
    grep -q "integrity    OK" "$dir/verify-post.out" || {
        echo "FAIL($label): post-recovery store integrity"; exit 1; }
    grep -q "index        OK" "$dir/verify-post.out" || {
        echo "FAIL($label): post-recovery index integrity"; exit 1; }
    grep -q "0 append(s) pending" "$dir/verify-post.out" || {
        echo "FAIL($label): WAL not folded after recovery"; exit 1; }
    # A query over the recovered store still answers (index path).
    "$TW" query --db "$db" --index "$idx" --eps 1000 --values 5,5,5 > /dev/null
    echo "    $label: all $acked acknowledged append(s) recovered, store+index+wal verify OK"
}

for n in 1 7 40 100; do
    dir="$WORK/concurrent-$n"
    mkdir -p "$dir"
    echo "==> concurrent ingest, abort after $n acknowledged appends"
    rc=0
    TWSEARCH_CRASH_AFTER_APPENDS=$n \
        "$TW" ingest --db "$dir/db.tws" --wal "$dir/db.twl" --index "$dir/db.twr" \
        --count 200 --len 24 --seed 9 --readers 2 --checkpoint-every 32 \
        > "$dir/ingest.out" 2>&1 || rc=$?
    [[ $rc -ne 0 ]] || { echo "FAIL: concurrent writer was supposed to crash"; exit 1; }
    acked=$(grep -c '^acked ' "$dir/ingest.out")
    [[ "$acked" -eq "$n" ]] || {
        echo "FAIL: expected exactly $n acked line(s), saw $acked"; exit 1; }
    concurrent_recover_and_check "$dir" "$n" "concurrent-abort@$n"
done

# Best-effort real SIGKILL mid-ingest with readers querying: the acked lines
# in the captured output are the durability contract — whatever the writer
# acknowledged before the signal landed must survive.
dir="$WORK/concurrent-sigkill"
mkdir -p "$dir"
echo "==> concurrent ingest, SIGKILL mid-run"
"$TW" ingest --db "$dir/db.tws" --wal "$dir/db.twl" --index "$dir/db.twr" \
    --count 50000 --len 32 --seed 13 --readers 2 --checkpoint-every 512 \
    > "$dir/ingest.out" 2>&1 &
writer=$!
acked_lines() {
    local c
    c=$(grep -c '^acked ' "$1" 2>/dev/null) || true
    echo "${c:-0}"
}
while [[ $(acked_lines "$dir/ingest.out") -lt 5 ]] \
    && kill -0 "$writer" 2>/dev/null; do sleep 0.02; done
if kill -9 "$writer" 2>/dev/null; then
    wait "$writer" 2>/dev/null || true
    acked=$(acked_lines "$dir/ingest.out")
    if [[ "$acked" -gt 0 ]]; then
        concurrent_recover_and_check "$dir" "$acked" "concurrent-sigkill"
    else
        echo "    concurrent-sigkill: writer died before the first acknowledgement (ok)"
    fi
else
    echo "    concurrent-sigkill: writer finished before the signal landed (ok)"
fi

# Sharded corpus ingest: the CRC'd manifest is the commit point — it is
# written last, after every shard's segment, index and sidecar are durable.
# A crash mid-shard-fold (via the TWSEARCH_CRASH_AFTER_FOLDS hook, which
# aborts between a shard's R-tree save and its sidecar) must therefore leave
# NO manifest — never a manifest naming half-written shards — and the same
# ingest re-run over the directory must commit cleanly and answer queries.
for n in 1 2 4; do
    dir="$WORK/sharded-$n"
    echo "==> sharded ingest, abort mid-fold of shard $n"
    rc=0
    TWSEARCH_CRASH_AFTER_FOLDS=$n \
        "$TW" ingest --db "$dir" --shards 4 --count 100 --len 24 --seed 21 \
        > /dev/null 2>&1 || rc=$?
    [[ $rc -ne 0 ]] || { echo "FAIL: sharded writer was supposed to crash"; exit 1; }
    [[ ! -f "$dir/manifest.twsm" ]] || {
        echo "FAIL(sharded-$n): crash mid-fold left a committed manifest"; exit 1; }
    # Re-running the same ingest over the crashed directory commits.
    "$TW" ingest --db "$dir" --shards 4 --count 100 --len 24 --seed 21 \
        > "$WORK/sharded-$n.out"
    grep -q "sharded 100 sequence(s) into 4 shard(s)" "$WORK/sharded-$n.out" || {
        echo "FAIL(sharded-$n): re-ingest did not commit all 4 shards"
        cat "$WORK/sharded-$n.out"; exit 1; }
    [[ -f "$dir/manifest.twsm" ]] || {
        echo "FAIL(sharded-$n): committed corpus has no manifest"; exit 1; }
    # The fan-out query path answers over the recovered corpus.
    "$TW" query --db "$dir" --eps 1000 --values 5,5,5 > "$WORK/sharded-$n-query.out"
    grep -q "across 4 shard(s)" "$WORK/sharded-$n-query.out" || {
        echo "FAIL(sharded-$n): query did not fan out across 4 shards"
        cat "$WORK/sharded-$n-query.out"; exit 1; }
    echo "    sharded-abort@$n: no manifest after crash; re-ingest committed and queries fan out"
done

# Control: an uninterrupted ingest is clean end to end.
db="$WORK/clean.tws"
echo "==> control (no crash)"
"$TW" generate --kind walk --count 500 --len 32 --seed 17 --out "$db" > /dev/null
"$TW" index --db "$db" --out "$WORK/clean.rtree" > /dev/null
# Capture to a file rather than piping straight into grep -q: under pipefail,
# grep -q closing the pipe early makes the CLI's last write fail with EPIPE.
"$TW" verify-store --db "$db" --index "$WORK/clean.rtree" > "$WORK/clean-verify.out"
grep -q "integrity    OK" "$WORK/clean-verify.out" \
    || { echo "FAIL: clean store did not verify OK"; exit 1; }
grep -q "index        OK" "$WORK/clean-verify.out" \
    || { echo "FAIL: clean index did not verify OK"; exit 1; }
echo "    control: clean store and index verify OK"

echo "crashtest passed."
