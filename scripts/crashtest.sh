#!/usr/bin/env bash
# Crash-recovery gate: kill the CLI writer at several points mid-ingest and
# assert the store is still readable (recovery trims at the damage, keeps the
# acknowledged prefix, and verify-store / info / query all succeed).
#
# The deterministic kill points use the TWSEARCH_CRASH_AFTER_APPENDS hook in
# `twsearch generate`, which calls abort() — no flush, no cleanup — after N
# appends. A final best-effort case delivers a real SIGKILL mid-run.
set -euo pipefail
cd "$(dirname "$0")/.."

TW="target/release/twsearch"
if [[ ! -x "$TW" ]]; then
    echo "==> building twsearch (release)"
    cargo build --release --offline -p tw-cli
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/tw-crashtest.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

check_readable() {
    local db="$1" label="$2"
    "$TW" verify-store --db "$db" > "$WORK/verify.out"
    grep -q "integrity" "$WORK/verify.out" || {
        echo "FAIL($label): verify-store produced no integrity line"; exit 1; }
    "$TW" info --db "$db" > /dev/null
    # A query over the recovered store must also work (scan path).
    "$TW" query --db "$db" --eps 1000 --values 5,5,5 > /dev/null
    echo "    $label: recovered store is readable ($(grep integrity "$WORK/verify.out" | tr -s ' '))"
}

# Deterministic kill points: right after the first append, mid-pool, just
# before and after the periodic flush boundary (every 1024 appends).
for n in 1 100 1023 1024 1500; do
    db="$WORK/abort-$n.tws"
    echo "==> abort after $n appends"
    rc=0
    TWSEARCH_CRASH_AFTER_APPENDS=$n \
        "$TW" generate --kind walk --count 2000 --len 32 --seed 11 --out "$db" \
        > /dev/null 2>&1 || rc=$?
    [[ $rc -ne 0 ]] || { echo "FAIL: writer was supposed to crash"; exit 1; }
    check_readable "$db" "abort@$n"
done

# Best-effort real SIGKILL mid-ingest: timing-dependent, so accept either a
# recoverable store or a file too young to contain a full header page.
db="$WORK/sigkill.tws"
echo "==> SIGKILL mid-generate"
"$TW" generate --kind walk --count 60000 --len 64 --seed 13 --out "$db" \
    > /dev/null 2>&1 &
writer=$!
while [[ ! -s "$db" ]] && kill -0 "$writer" 2>/dev/null; do sleep 0.02; done
sleep 0.05
if kill -9 "$writer" 2>/dev/null; then
    wait "$writer" 2>/dev/null || true
    if [[ $(stat -c%s "$db" 2>/dev/null || echo 0) -ge 1024 ]]; then
        check_readable "$db" "sigkill"
    else
        echo "    sigkill: writer died before the header page was durable (ok)"
    fi
else
    echo "    sigkill: writer finished before the signal landed (ok)"
fi

# Control: an uninterrupted ingest is clean end to end.
db="$WORK/clean.tws"
echo "==> control (no crash)"
"$TW" generate --kind walk --count 500 --len 32 --seed 17 --out "$db" > /dev/null
"$TW" index --db "$db" --out "$WORK/clean.rtree" > /dev/null
# Capture to a file rather than piping straight into grep -q: under pipefail,
# grep -q closing the pipe early makes the CLI's last write fail with EPIPE.
"$TW" verify-store --db "$db" --index "$WORK/clean.rtree" > "$WORK/clean-verify.out"
grep -q "integrity    OK" "$WORK/clean-verify.out" \
    || { echo "FAIL: clean store did not verify OK"; exit 1; }
grep -q "index        OK" "$WORK/clean-verify.out" \
    || { echo "FAIL: clean index did not verify OK"; exit 1; }
echo "    control: clean store and index verify OK"

echo "crashtest passed."
