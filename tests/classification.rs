//! Semantic end-to-end test: 1-NN classification under the time-warping
//! distance on the Cylinder–Bell–Funnel benchmark.
//!
//! DTW's claim to fame is that 1-NN-DTW classifies CBF nearly perfectly
//! because warping absorbs the event-onset variation that breaks Euclidean
//! matching. Running the classifier through the full store + index + kNN
//! stack checks that the whole system computes the right distances, not just
//! self-consistent ones.

use tw_core::distance::DtwKind;
use tw_core::search::TwSimSearch;
use tw_storage::{MemPager, SequenceStore};
use tw_workload::{cbf, cbf_dataset, CbfClass};

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

#[test]
fn one_nn_dtw_classifies_cbf() {
    // Training set: 90 labelled sequences, mixed lengths would be ideal but
    // CBF is defined per-length; vary noise instead.
    let train = cbf_dataset(90, 96, 0.35, 11);
    let data: Vec<Vec<f64>> = train.iter().map(|(_, s)| s.clone()).collect();
    let labels: Vec<CbfClass> = train.iter().map(|(c, _)| *c).collect();
    let store = store_with(&data);
    let engine = TwSimSearch::build(&store).expect("build index");

    // Test set: 45 fresh sequences from disjoint seeds.
    let classes = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
    let mut correct = 0usize;
    let total = 45usize;
    for i in 0..total {
        let truth = classes[i % 3];
        let query = cbf(truth, 96, 0.35, 10_000 + i as u64);
        let (neighbors, _) = engine.knn(&store, &query, 1, DtwKind::MaxAbs).expect("knn");
        let predicted = labels[neighbors[0].id as usize];
        if predicted == truth {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy >= 0.85,
        "1-NN DTW accuracy {accuracy:.2} below expectation ({correct}/{total})"
    );
}

#[test]
fn dtw_beats_euclidean_on_cbf_with_onset_shift() {
    // The motivating comparison: same-class sequences with shifted event
    // onsets are close under DTW but far under pointwise L-inf.
    let a = cbf(CbfClass::Bell, 128, 0.0, 1); // one onset
    let b = cbf(CbfClass::Bell, 128, 0.0, 2); // another onset
    let c = cbf(CbfClass::Funnel, 128, 0.0, 1); // same onset as a, other class

    let dtw_same = tw_core::dtw(&a, &b, DtwKind::MaxAbs).distance;
    let dtw_diff = tw_core::dtw(&a, &c, DtwKind::MaxAbs).distance;
    assert!(
        dtw_same < dtw_diff,
        "DTW: same-class {dtw_same} should beat cross-class {dtw_diff}"
    );

    // Pointwise comparison confuses the classes when onsets shift.
    let linf_same = tw_core::distance::linf(&a, &b);
    assert!(
        dtw_same < linf_same * 0.6,
        "warping should absorb most of the onset shift: dtw {dtw_same} vs linf {linf_same}"
    );
}

#[test]
fn knn_majority_vote_is_robust() {
    // 3-NN majority vote should not be worse than chance even with heavy
    // noise, and the neighbours themselves should be mostly same-class.
    let train = cbf_dataset(60, 80, 0.5, 77);
    let data: Vec<Vec<f64>> = train.iter().map(|(_, s)| s.clone()).collect();
    let labels: Vec<CbfClass> = train.iter().map(|(c, _)| *c).collect();
    let store = store_with(&data);
    let engine = TwSimSearch::build(&store).expect("build index");

    let mut same_class_neighbors = 0usize;
    let mut total_neighbors = 0usize;
    for i in 0..15 {
        let truth = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel][i % 3];
        let query = cbf(truth, 80, 0.5, 5_000 + i as u64);
        let (neighbors, _) = engine.knn(&store, &query, 3, DtwKind::MaxAbs).expect("knn");
        for n in &neighbors {
            total_neighbors += 1;
            if labels[n.id as usize] == truth {
                same_class_neighbors += 1;
            }
        }
    }
    let purity = same_class_neighbors as f64 / total_neighbors as f64;
    assert!(
        purity > 0.5,
        "neighbour purity {purity:.2} should beat the 1/3 class prior"
    );
}
