//! End-to-end scenario tests: the full store → index → query → verify → cost
//! pipeline behaving the way the paper's evaluation says it should.

use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, LbScan, NaiveScan, SearchEngine, StFilterSearch, TwSimSearch};
use tw_storage::{HardwareModel, MemPager, SequenceStore};
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

/// Figure 2's qualitative claim: TW-Sim-Search's candidate ratio beats
/// LB-Scan's on realistic data.
#[test]
fn tw_sim_filters_better_than_lb_scan() {
    let data = generate_random_walks(&RandomWalkConfig::paper(400, 100), 21);
    let store = store_with(&data);
    let tw = TwSimSearch::build(&store).expect("build");
    let queries = generate_queries(&data, 10, 22);
    let (mut tw_cands, mut lb_cands, mut matches) = (0usize, 0usize, 0usize);
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    for q in &queries {
        let r1 = tw.range_search(&store, q, 0.1, &opts).expect("tw");
        let r2 = LbScan.range_search(&store, q, 0.1, &opts).expect("lb");
        assert_eq!(r1.ids(), r2.ids());
        tw_cands += r1.stats.candidates;
        lb_cands += r2.stats.candidates;
        matches += r1.matches.len();
    }
    assert!(
        tw_cands <= lb_cands,
        "LB_Kim candidates {tw_cands} > LB_Yi candidates {lb_cands}"
    );
    assert!(tw_cands >= matches, "filter cannot beat the truth");
}

/// Figures 3–5's qualitative claim: on the modeled 2001 disk, the index
/// engine beats every scan, and the gap widens with database size.
#[test]
fn modeled_speedup_grows_with_database_size() {
    let hw = HardwareModel::icde2001();
    let mut speedups = Vec::new();
    for n in [500usize, 2_000, 8_000] {
        let data = generate_random_walks(&RandomWalkConfig::paper(n, 100), 31);
        let store = store_with(&data);
        let tw = TwSimSearch::build(&store).expect("build");
        let queries = generate_queries(&data, 5, 32);
        let mut tw_time = std::time::Duration::ZERO;
        let mut scan_time = std::time::Duration::ZERO;
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for q in &queries {
            let r1 = tw.range_search(&store, q, 0.05, &opts).expect("tw");
            let r2 = NaiveScan
                .range_search(&store, q, 0.05, &opts)
                .expect("naive");
            tw_time += r1.stats.modeled_elapsed(&hw);
            scan_time += r2.stats.modeled_elapsed(&hw);
        }
        speedups.push(scan_time.as_secs_f64() / tw_time.as_secs_f64());
    }
    // On a seek-dominated disk a tiny database can favor the scan (the paper
    // only evaluates from 545 sequences up); at scale the index must win and
    // the gap must widen — the claim of Figures 4–5.
    assert!(
        speedups[2] > 1.0,
        "index slower than scan at 8k sequences: {speedups:?}"
    );
    assert!(
        speedups[2] > speedups[0],
        "speedup must grow with N: {speedups:?}"
    );
}

/// Figure 2's other claim: smaller tolerances mean better relative filtering
/// (the candidate ratio shrinks with epsilon).
#[test]
fn candidate_ratio_shrinks_with_tolerance() {
    let data = generate_random_walks(&RandomWalkConfig::paper(300, 80), 41);
    let store = store_with(&data);
    let tw = TwSimSearch::build(&store).expect("build");
    let queries = generate_queries(&data, 5, 42);
    let ratio_at = |eps: f64| {
        let mut cands = 0usize;
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for q in &queries {
            cands += tw
                .range_search(&store, q, eps, &opts)
                .expect("query")
                .stats
                .candidates;
        }
        cands as f64 / (data.len() * queries.len()) as f64
    };
    let tight = ratio_at(0.05);
    let loose = ratio_at(0.5);
    assert!(tight <= loose, "tight {tight} > loose {loose}");
}

/// The paper's structural claim (§3.4): the suffix tree dwarfs the R-tree,
/// and the R-tree stays a small fraction of the database size (§5.2 says
/// < 4%).
#[test]
fn index_size_relationships() {
    let data = generate_random_walks(&RandomWalkConfig::paper(300, 120), 51);
    let store = store_with(&data);
    let tw = TwSimSearch::build(&store).expect("build tw");
    let st = StFilterSearch::build(&store).expect("build st");
    assert!(st.tree_nodes() > 20 * tw.tree().node_count());

    // R-tree bytes (1 KB per node) vs database bytes.
    let rtree_bytes = tw.tree().node_count() * 1024;
    let db_bytes = store.data_bytes() as usize;
    assert!(
        rtree_bytes * 10 < db_bytes,
        "R-tree {rtree_bytes}B not small vs database {db_bytes}B"
    );
}

/// Growing the database incrementally keeps the engine exact — inserts after
/// the initial bulk load are honored.
#[test]
fn incremental_growth_stays_exact() {
    let initial = generate_random_walks(&RandomWalkConfig::paper(50, 40), 61);
    let extra = generate_random_walks(&RandomWalkConfig::paper(30, 40), 62);
    let mut store = store_with(&initial);
    let mut tw = TwSimSearch::build(&store).expect("build");
    for s in &extra {
        let id = store.append(s).expect("append");
        tw.insert(s, id).expect("insert");
    }
    let queries = generate_queries(&extra, 5, 63);
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    for q in &queries {
        let idx = tw.range_search(&store, q, 0.15, &opts).expect("tw");
        let scan = NaiveScan
            .range_search(&store, q, 0.15, &opts)
            .expect("naive");
        assert_eq!(idx.ids(), scan.ids());
    }
    // At least one query should match its perturbed source in the new batch.
    let any_new_match = queries.iter().any(|q| {
        tw.range_search(&store, q, 0.15, &opts)
            .expect("tw")
            .ids()
            .iter()
            .any(|&id| id >= initial.len() as u64)
    });
    assert!(
        any_new_match,
        "no query matched the incrementally added data"
    );
}

/// The stats surface adds up: scans pay sequential pages, the index pays
/// random reads plus node accesses, and both verify candidates.
#[test]
fn stats_accounting_is_coherent() {
    let data = generate_random_walks(&RandomWalkConfig::paper(200, 150), 71);
    let store = store_with(&data);
    let tw = TwSimSearch::build(&store).expect("build");
    let q = generate_queries(&data, 1, 72).remove(0);
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);

    let scan = NaiveScan
        .range_search(&store, &q, 0.1, &opts)
        .expect("naive");
    assert_eq!(scan.stats.io.sequential_pages_scanned, store.data_pages());
    assert_eq!(scan.stats.io.random_page_reads, 0);
    assert_eq!(scan.stats.dtw_invocations as usize, data.len());

    let idx = tw.range_search(&store, &q, 0.1, &opts).expect("tw");
    assert_eq!(idx.stats.io.sequential_pages_scanned, 0);
    assert_eq!(idx.stats.dtw_invocations as usize, idx.stats.candidates);
    assert!(idx.stats.index_node_accesses >= 1);
    // Candidate reads touch at least one page per candidate.
    assert!(idx.stats.io.random_page_reads >= idx.stats.candidates as u64);
}
