//! Every exact engine — Naive-Scan, LB-Scan, ST-Filter, TW-Sim-Search and
//! the hybrid router — returns an identical result set on realistic
//! workloads (the paper's correctness claim, checked across data families).
//!
//! All engines run through the unified [`SearchEngine`] trait, and every
//! workload is repeated at 1, 2 and 4 verification threads: the shared
//! verification pipeline must be deterministic, so the thread count can
//! never change a result set.

use tw_core::distance::DtwKind;
use tw_core::search::{
    EngineOpts, FastMapSearch, HybridSearch, LbScan, NaiveScan, SearchEngine, StFilterSearch,
    TwSimSearch,
};
use tw_core::{BoundTier, CascadeSpec};
use tw_storage::{MemPager, SequenceStore};
use tw_workload::{
    cbf_dataset, generate_queries, generate_random_walks, generate_stocks, normalize_to_unit_range,
    RandomWalkConfig, StockConfig,
};

const VERIFY_THREADS: [usize; 3] = [1, 2, 4];

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

/// Every engine with the exactness guarantee, as trait objects.
fn exact_engines(store: &SequenceStore<MemPager>) -> Vec<Box<dyn SearchEngine<MemPager>>> {
    vec![
        Box::new(NaiveScan),
        Box::new(LbScan),
        Box::new(StFilterSearch::build(store).expect("build st-filter")),
        Box::new(TwSimSearch::build(store).expect("build tw-sim")),
        Box::new(HybridSearch::build(store).expect("build hybrid")),
    ]
}

fn assert_all_engines_agree(data: &[Vec<f64>], queries: &[Vec<f64>], epsilons: &[f64]) {
    let store = store_with(data);
    let engines = exact_engines(&store);
    for kind in [DtwKind::MaxAbs, DtwKind::SumAbs] {
        for threads in VERIFY_THREADS {
            // The full tiered cascade under exact verification is itself
            // exact, so it must never change a result set — only the work
            // accounting. Both arms run against the same cascade-less
            // reference.
            for cascade in [None, Some(CascadeSpec::standard())] {
                let mut opts = EngineOpts::new().kind(kind).threads(threads);
                opts.cascade = cascade.clone();
                for &eps in epsilons {
                    for (qi, q) in queries.iter().enumerate() {
                        let reference = NaiveScan
                            .range_search(&store, q, eps, &EngineOpts::new().kind(kind))
                            .expect("naive")
                            .ids();
                        for engine in &engines {
                            let ids = engine
                                .range_search(&store, q, eps, &opts)
                                .unwrap_or_else(|e| panic!("{} failed: {e:?}", engine.name()))
                                .ids();
                            // Identical — not merely equivalent — result sets:
                            // no false dismissal and no false alarm, in one.
                            assert_eq!(
                                reference,
                                ids,
                                "{}: {kind:?} eps {eps} query {qi} threads {threads} \
                                 cascade {}",
                                engine.name(),
                                cascade.is_some()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_random_walks() {
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 40), 1);
    let queries = generate_queries(&data, 4, 2);
    assert_all_engines_agree(&data, &queries, &[0.05, 0.2, 1.0]);
}

#[test]
fn engines_agree_on_stock_data() {
    let mut data = generate_stocks(
        &StockConfig {
            count: 50,
            mean_len: 60,
            len_jitter: 20,
        },
        3,
    );
    normalize_to_unit_range(&mut data, 1.0, 10.0);
    let queries = generate_queries(&data, 4, 4);
    assert_all_engines_agree(&data, &queries, &[0.05, 0.3]);
}

#[test]
fn engines_agree_on_cbf_shapes() {
    let data: Vec<Vec<f64>> = cbf_dataset(30, 48, 0.3, 5)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let queries: Vec<Vec<f64>> = data.iter().take(3).cloned().collect();
    assert_all_engines_agree(&data, &queries, &[0.5, 2.0]);
}

#[test]
fn engines_agree_with_mixed_lengths_and_duplicates() {
    // Duplicates, singletons, constant sequences, and wildly varying lengths.
    let mut data = vec![
        vec![5.0],
        vec![5.0],
        vec![5.0; 100],
        vec![1.0, 2.0, 3.0],
        (0..200)
            .map(|i| (i as f64 * 0.1).sin() * 3.0 + 5.0)
            .collect(),
    ];
    data.extend(generate_random_walks(&RandomWalkConfig::paper(20, 15), 9));
    let queries = vec![vec![5.0, 5.0], vec![1.5, 2.5], data[4].clone()];
    assert_all_engines_agree(&data, &queries, &[0.0, 0.1, 1.0, 10.0]);
}

#[test]
fn matches_and_work_are_thread_count_invariant() {
    // Beyond the id sets: distances and the DTW cell count must not depend
    // on how verification is sharded (early abandonment is per-candidate).
    let data = generate_random_walks(&RandomWalkConfig::paper(80, 40), 17);
    let store = store_with(&data);
    let engines = exact_engines(&store);
    let query = generate_queries(&data, 1, 18).remove(0);
    for engine in &engines {
        let baseline = engine
            .range_search(&store, &query, 0.3, &EngineOpts::new())
            .expect("threads=1");
        for threads in [2usize, 4] {
            let out = engine
                .range_search(&store, &query, 0.3, &EngineOpts::new().threads(threads))
                .expect("threaded");
            for (a, b) in baseline.matches.iter().zip(&out.matches) {
                assert_eq!(a.id, b.id, "{} threads {threads}", engine.name());
                assert_eq!(
                    a.distance,
                    b.distance,
                    "{} threads {threads}",
                    engine.name()
                );
            }
            assert_eq!(baseline.matches.len(), out.matches.len());
            assert_eq!(
                baseline.stats.dtw_cells,
                out.stats.dtw_cells,
                "{} threads {threads}",
                engine.name()
            );
            // The pipeline counters are equally thread-invariant (phase
            // timers excepted — wall clock is never deterministic).
            assert!(
                out.query_stats.counters_eq(&baseline.query_stats),
                "{} threads {threads}: {:?} vs {:?}",
                engine.name(),
                out.query_stats,
                baseline.query_stats
            );
        }
    }
}

#[test]
fn cascade_tiers_are_monotone_in_work_not_results() {
    // Growing the cascade tier by tier never changes a match set — each
    // tier is a proven lower bound — while the DP work can only shrink
    // (more tiers prune at least as many candidates before verification).
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 40), 29);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 30).remove(0);
    let prefixes: [&[BoundTier]; 5] = [
        &[],
        &[BoundTier::Kim],
        &[BoundTier::Kim, BoundTier::Yi],
        &[BoundTier::Kim, BoundTier::Yi, BoundTier::Keogh],
        &BoundTier::ALL,
    ];
    for engine in [
        Box::new(NaiveScan) as Box<dyn SearchEngine<MemPager>>,
        Box::new(LbScan),
        Box::new(TwSimSearch::build(&store).expect("build tw-sim")),
    ] {
        for eps in [0.1, 0.4] {
            let reference = engine
                .range_search(&store, &query, eps, &EngineOpts::new())
                .expect("no cascade");
            let mut last_cells = u64::MAX;
            for tiers in prefixes {
                let opts = EngineOpts::new().cascade(CascadeSpec::none().tiers(tiers));
                let out = engine
                    .range_search(&store, &query, eps, &opts)
                    .expect("cascade");
                assert_eq!(
                    reference.ids(),
                    out.ids(),
                    "{} eps {eps} tiers {tiers:?}",
                    engine.name()
                );
                assert!(
                    out.query_stats.accounting_balanced(),
                    "{} eps {eps} tiers {tiers:?}: {:?}",
                    engine.name(),
                    out.query_stats
                );
                assert!(
                    out.query_stats.dtw_cells <= last_cells,
                    "{} eps {eps} tiers {tiers:?}: cells grew",
                    engine.name()
                );
                last_cells = out.query_stats.dtw_cells;
            }
        }
    }
}

#[test]
fn fastmap_stays_a_subset_at_every_thread_count() {
    // The one approximate engine: never a false alarm, whatever the
    // verification parallelism.
    let data = generate_random_walks(&RandomWalkConfig::paper(40, 30), 21);
    let store = store_with(&data);
    let fastmap = FastMapSearch::build(&store, 2, DtwKind::MaxAbs, 7).expect("fit fastmap");
    let queries = generate_queries(&data, 3, 22);
    for threads in VERIFY_THREADS {
        let opts = EngineOpts::new().threads(threads);
        for q in &queries {
            for eps in [0.05, 0.3, 2.0] {
                let exact = NaiveScan
                    .range_search(&store, q, eps, &opts)
                    .expect("naive");
                let approx = fastmap
                    .range_search(&store, q, eps, &opts)
                    .expect("fastmap");
                let exact_ids = exact.ids();
                for id in approx.ids() {
                    assert!(
                        exact_ids.contains(&id),
                        "spurious {id} at threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn knn_agrees_with_tolerance_search_boundary() {
    // The k-th neighbour's distance, used as a tolerance, must return at
    // least k sequences.
    let data = generate_random_walks(&RandomWalkConfig::paper(80, 30), 11);
    let store = store_with(&data);
    let tw = TwSimSearch::build(&store).expect("build");
    let query = generate_queries(&data, 1, 12).remove(0);
    let (neighbors, _) = tw.knn(&store, &query, 5, DtwKind::MaxAbs).expect("knn");
    assert_eq!(neighbors.len(), 5);
    let radius = neighbors.last().unwrap().distance;
    let within = tw
        .range_search(&store, &query, radius, &EngineOpts::new())
        .expect("range");
    assert!(within.matches.len() >= 5);
    for n in &neighbors {
        assert!(within.ids().contains(&n.id));
    }
}
