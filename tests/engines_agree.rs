//! All four exact engines — Naive-Scan, LB-Scan, ST-Filter, TW-Sim-Search —
//! plus the parallel scan return identical result sets on realistic
//! workloads (the paper's correctness claim, checked across data families).

use tw_core::distance::DtwKind;
use tw_core::search::{LbScan, NaiveScan, ParallelNaiveScan, StFilterSearch, TwSimSearch};
use tw_storage::{MemPager, SequenceStore};
use tw_workload::{
    cbf_dataset, generate_queries, generate_random_walks, generate_stocks,
    normalize_to_unit_range, RandomWalkConfig, StockConfig,
};

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

fn assert_all_engines_agree(data: &[Vec<f64>], queries: &[Vec<f64>], epsilons: &[f64]) {
    let store = store_with(data);
    let tw = TwSimSearch::build(&store).expect("build tw-sim");
    let st = StFilterSearch::build(&store).expect("build st-filter");
    let par = ParallelNaiveScan::new(3);
    for kind in [DtwKind::MaxAbs, DtwKind::SumAbs] {
        for &eps in epsilons {
            for (qi, q) in queries.iter().enumerate() {
                let reference = NaiveScan::search(&store, q, eps, kind)
                    .expect("naive")
                    .ids();
                let lb = LbScan::search(&store, q, eps, kind).expect("lb").ids();
                let sti = st.search(&store, q, eps, kind).expect("st").ids();
                let twi = tw.search(&store, q, eps, kind).expect("tw").ids();
                let pari = par.search(&store, q, eps, kind).expect("par").ids();
                assert_eq!(reference, lb, "lb-scan: {kind:?} eps {eps} query {qi}");
                assert_eq!(reference, sti, "st-filter: {kind:?} eps {eps} query {qi}");
                assert_eq!(reference, twi, "tw-sim: {kind:?} eps {eps} query {qi}");
                assert_eq!(reference, pari, "parallel: {kind:?} eps {eps} query {qi}");
            }
        }
    }
}

#[test]
fn engines_agree_on_random_walks() {
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 40), 1);
    let queries = generate_queries(&data, 4, 2);
    assert_all_engines_agree(&data, &queries, &[0.05, 0.2, 1.0]);
}

#[test]
fn engines_agree_on_stock_data() {
    let mut data = generate_stocks(
        &StockConfig {
            count: 50,
            mean_len: 60,
            len_jitter: 20,
        },
        3,
    );
    normalize_to_unit_range(&mut data, 1.0, 10.0);
    let queries = generate_queries(&data, 4, 4);
    assert_all_engines_agree(&data, &queries, &[0.05, 0.3]);
}

#[test]
fn engines_agree_on_cbf_shapes() {
    let data: Vec<Vec<f64>> = cbf_dataset(30, 48, 0.3, 5)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let queries: Vec<Vec<f64>> = data.iter().take(3).cloned().collect();
    assert_all_engines_agree(&data, &queries, &[0.5, 2.0]);
}

#[test]
fn engines_agree_with_mixed_lengths_and_duplicates() {
    // Duplicates, singletons, constant sequences, and wildly varying lengths.
    let mut data = vec![
        vec![5.0],
        vec![5.0],
        vec![5.0; 100],
        vec![1.0, 2.0, 3.0],
        (0..200).map(|i| (i as f64 * 0.1).sin() * 3.0 + 5.0).collect(),
    ];
    data.extend(generate_random_walks(&RandomWalkConfig::paper(20, 15), 9));
    let queries = vec![vec![5.0, 5.0], vec![1.5, 2.5], data[4].clone()];
    assert_all_engines_agree(&data, &queries, &[0.0, 0.1, 1.0, 10.0]);
}

#[test]
fn knn_agrees_with_tolerance_search_boundary() {
    // The k-th neighbour's distance, used as a tolerance, must return at
    // least k sequences.
    let data = generate_random_walks(&RandomWalkConfig::paper(80, 30), 11);
    let store = store_with(&data);
    let tw = TwSimSearch::build(&store).expect("build");
    let query = generate_queries(&data, 1, 12).remove(0);
    let (neighbors, _) = tw.knn(&store, &query, 5, DtwKind::MaxAbs).expect("knn");
    assert_eq!(neighbors.len(), 5);
    let radius = neighbors.last().unwrap().distance;
    let within = tw
        .search(&store, &query, radius, DtwKind::MaxAbs)
        .expect("range");
    assert!(within.matches.len() >= 5);
    for n in &neighbors {
        assert!(within.ids().contains(&n.id));
    }
}
