//! Fault-schedule matrix: every search engine, run over a store whose pager
//! injects seeded faults, must either produce results identical to the
//! fault-free run or fail with a *typed* error / degrade to an exact
//! fallback. It must never panic, and it must never silently drop a
//! qualifying sequence — that would break the paper's no-false-dismissal
//! guarantee in the one place a user cannot see it.
//!
//! The protective stack under test is the production one:
//! `RetryPager<ChecksumPager<FaultPager<MemPager>>>` — faults injected at the
//! device level, checksums above them, bounded retry on top.

use proptest::prelude::*;
use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, LbScan, ResilientSearch, SearchEngine, TwSimSearch};
use tw_core::TwError;
use tw_storage::{
    create_wal_file, decode_record_v2, encode_record_to_bytes_v2, open_wal_file, ChecksumPager,
    FaultConfig, FaultHandle, FaultPager, FilePager, MemPager, RetryPager, RetryPolicy,
    SequenceStore, Wal, WalRecord,
};
use tw_workload::{generate_random_walks, RandomWalkConfig};

type FaultedStore = SequenceStore<RetryPager<ChecksumPager<FaultPager<MemPager>>>>;

fn dataset() -> Vec<Vec<f64>> {
    generate_random_walks(&RandomWalkConfig::paper(40, 32), 0xA11CE)
}

fn queries() -> Vec<(Vec<f64>, f64)> {
    let data = dataset();
    vec![
        (data[3].clone(), 0.0),
        (data[17].clone(), 0.4),
        (data[8].clone(), 1.5),
        (vec![5.0, 5.5, 6.0, 5.5], 0.8),
    ]
}

/// The ground truth, computed once over an untouched in-memory store.
fn fault_free_answers() -> Vec<Vec<u64>> {
    let mut store = SequenceStore::in_memory();
    for s in dataset() {
        store.append(&s).expect("append");
    }
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    queries()
        .iter()
        .map(|(q, eps)| {
            LbScan
                .range_search(&store, q, *eps, &opts)
                .expect("baseline")
                .ids()
        })
        .collect()
}

/// Builds the production pager stack around a fault injector, populates the
/// store while faults are disarmed, and returns the armed handle.
fn faulted_store(config: FaultConfig, policy: RetryPolicy) -> (FaultedStore, FaultHandle) {
    let (fault, handle) = FaultPager::new(MemPager::new(1024), config);
    let stack = RetryPager::new(ChecksumPager::new(fault), policy);
    let mut store = SequenceStore::create(stack, 8).expect("create");
    for s in dataset() {
        store.append(&s).expect("append");
    }
    store.flush().expect("flush");
    handle.arm();
    (store, handle)
}

#[test]
fn transient_faults_retry_to_identical_results() {
    let expected = fault_free_answers();
    for seed in [1u64, 2, 3, 7, 13] {
        // max_consecutive (2) stays below the retry budget (4 attempts), so
        // every operation eventually succeeds and results must be identical.
        let (store, handle) =
            faulted_store(FaultConfig::transient(seed, 200), RetryPolicy::default());
        let engine = TwSimSearch::build(&store).expect("build index under faults");
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for (i, (q, eps)) in queries().iter().enumerate() {
            let lb = LbScan
                .range_search(&store, q, *eps, &opts)
                .expect("lb-scan under transient faults");
            assert_eq!(lb.ids(), expected[i], "lb-scan seed {seed} query {i}");
            let tw = engine
                .range_search(&store, q, *eps, &opts)
                .expect("tw-sim-search under transient faults");
            assert_eq!(tw.ids(), expected[i], "tw-sim seed {seed} query {i}");
        }
        assert!(
            handle.stats().transient_faults > 0,
            "schedule for seed {seed} never fired — the test proved nothing"
        );
    }
}

#[test]
fn read_bit_flips_heal_when_corrupt_retry_is_enabled() {
    let expected = fault_free_answers();
    for seed in [5u64, 11, 23] {
        // Bit flips happen in transit (the pager mutates the returned
        // buffer, not the stored page), so a checksum failure followed by a
        // re-read observes clean data. With `retry_corrupt` the stack heals
        // and answers must be identical to the fault-free run.
        let (store, handle) = faulted_store(
            FaultConfig::bit_flips(seed, 150),
            RetryPolicy::default().with_retry_corrupt(),
        );
        let engine = TwSimSearch::build(&store).expect("build index under flips");
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for (i, (q, eps)) in queries().iter().enumerate() {
            let lb = LbScan
                .range_search(&store, q, *eps, &opts)
                .expect("lb-scan under healed flips");
            assert_eq!(lb.ids(), expected[i], "lb-scan seed {seed} query {i}");
            let tw = engine
                .range_search(&store, q, *eps, &opts)
                .expect("tw-sim-search under healed flips");
            assert_eq!(tw.ids(), expected[i], "tw-sim seed {seed} query {i}");
        }
        assert!(handle.stats().bit_flips > 0, "seed {seed} never flipped");
    }
}

#[test]
fn unhealed_corruption_is_a_typed_error_never_a_wrong_answer() {
    let expected = fault_free_answers();
    for seed in [4u64, 9, 21, 42] {
        // No corrupt-retry: a flipped read either misses the query's pages
        // (exact answer) or surfaces as a typed corruption error. A wrong
        // answer or a panic is the only unacceptable outcome.
        let (store, _handle) =
            faulted_store(FaultConfig::bit_flips(seed, 120), RetryPolicy::default());
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for (i, (q, eps)) in queries().iter().enumerate() {
            match LbScan.range_search(&store, q, *eps, &opts) {
                Ok(out) => assert_eq!(out.ids(), expected[i], "seed {seed} query {i}"),
                Err(TwError::Storage(e)) => {
                    assert!(
                        e.is_corruption() || e.is_transient(),
                        "seed {seed} query {i}: untyped storage error {e}"
                    );
                }
                Err(other) => panic!("seed {seed} query {i}: unexpected error {other}"),
            }
        }
    }
}

#[test]
fn corrupt_index_file_degrades_to_the_exact_qualifying_set() {
    let dir = std::env::temp_dir().join(format!("twfault-idx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let idx = dir.join("index.rtree");

    let mut store = SequenceStore::in_memory();
    for s in dataset() {
        store.append(&s).expect("append");
    }
    TwSimSearch::build(&store)
        .expect("build")
        .save_file(&idx)
        .expect("save");

    let expected = fault_free_answers();
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    // Corrupt a different region of the index file each round: wherever the
    // damage lands, the engine answers with exactly the qualifying set.
    let clean = std::fs::read(&idx).expect("read index");
    for frac in [3usize, 5, 7, 11] {
        let mut bad = clean.clone();
        let target = bad.len() * (frac - 1) / frac;
        bad[target] ^= 0x40;
        std::fs::write(&idx, &bad).expect("write corrupted");

        let engine = ResilientSearch::from_index_file(&idx, Some(store.len()));
        assert!(engine.is_index_offline(), "corruption at {target} missed");
        for (i, (q, eps)) in queries().iter().enumerate() {
            let out = engine
                .range_search(&store, q, *eps, &opts)
                .expect("degraded query");
            assert_eq!(out.ids(), expected[i], "frac {frac} query {i}");
            assert!(out.health.is_degraded());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shard_index_degrades_that_shard_alone_and_stays_exact() {
    // One shard's R-tree file takes a bit flip. Opening the corpus must
    // succeed, only that shard's engine may go index-offline (falling back
    // to LB-Scan), the merged health must name the damaged shard — and the
    // fan-out answer must still be exactly the qualifying set.
    use tw_core::search::{CorpusSharder, ShardedSearch};
    use tw_storage::rtree_path;

    let dir = std::env::temp_dir().join(format!("twfault-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let data = dataset();
    let mut sharder = CorpusSharder::create(&dir, 10).expect("create sharder");
    for s in &data {
        sharder.append(s).expect("append");
    }
    let manifest = sharder.finish().expect("finish");
    assert_eq!(manifest.shard_count(), 4);

    // Flip one byte in the middle of shard 1's index file.
    let idx = rtree_path(&dir, 1);
    let mut raw = std::fs::read(&idx).expect("read shard index");
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&idx, &raw).expect("write corrupted shard index");

    let (sharded, reports) = ShardedSearch::open_dir(&dir, 16).expect("open corpus");
    assert_eq!(reports.len(), 4);
    for (i, shard) in sharded.shards().iter().enumerate() {
        assert_eq!(
            shard.engine().is_index_offline(),
            i == 1,
            "shard {i}: wrong index health"
        );
    }

    let expected = fault_free_answers();
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    for (i, (q, eps)) in queries().iter().enumerate() {
        let out = sharded
            .range_search_sharded(q, *eps, &opts)
            .expect("degraded fan-out");
        assert_eq!(out.merged.ids(), expected[i], "query {i}");
        assert!(out.merged.health.is_degraded(), "query {i}");
        match &out.merged.health {
            tw_core::search::EngineHealth::Degraded { reason, .. } => {
                assert!(
                    reason.contains("shard 1"),
                    "query {i}: health does not name the damaged shard: {reason}"
                );
                assert!(!reason.contains("shard 0"), "query {i}: {reason}");
                assert!(!reason.contains("shard 2"), "query {i}: {reason}");
                assert!(!reason.contains("shard 3"), "query {i}: {reason}");
            }
            other => panic!("query {i}: expected degraded health, got {other:?}"),
        }
        // The healthy shards answered through their indexes.
        for (si, shard_out) in out.per_shard.iter().enumerate() {
            assert_eq!(
                shard_out.health.is_degraded(),
                si == 1,
                "query {i} shard {si}: wrong per-shard health"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_and_transient_writes_never_corrupt_acknowledged_data() {
    // Writes that tear persist a prefix and report failure; the retry layer
    // rewrites the page. Appends that fail after the retry budget are NOT
    // acknowledged — the invariant is that every append that returned Ok is
    // readable afterwards.
    for seed in [6u64, 19, 31] {
        let (fault, handle) = FaultPager::new(
            MemPager::new(1024),
            FaultConfig {
                torn_write_per_mille: 150,
                transient_write_per_mille: 100,
                ..FaultConfig::quiet(seed)
            },
        );
        let stack = RetryPager::new(ChecksumPager::new(fault), RetryPolicy::default());
        let mut store = SequenceStore::create(stack, 8).expect("create");
        handle.arm();
        let mut acknowledged = Vec::new();
        for (i, s) in dataset().iter().enumerate() {
            if let Ok(id) = store.append(s) {
                acknowledged.push((id, i));
            }
        }
        handle.disarm();
        for (id, i) in &acknowledged {
            assert_eq!(
                store.get(*id).expect("acknowledged read"),
                dataset()[*i],
                "seed {seed} id {id}"
            );
        }
        assert!(handle.stats().injected() > 0, "seed {seed} never fired");
    }
}

#[test]
fn deadline_under_fault_storm_stays_exact_and_typed() {
    // The governor × fault cross-matrix: a 5 ms (simulated) deadline over a
    // store whose pager is having a transient-fault storm. The shared
    // `ManualClock` drives both sides — retry backoff sleeps advance the
    // same simulated time the deadline is measured against — so the
    // interaction is deterministic. Every query must end one of three ways:
    // complete with the exact answer, deadline-exceeded with an exact
    // subset and a balanced ledger, or a *typed* transient/corruption
    // error (the governor aborts retry loops, surfacing the device error).
    use std::sync::Arc;
    use std::time::Duration;
    use tw_core::govern::{ManualClock, QueryBudget, Termination};

    let expected = fault_free_answers();
    let mut deadline_hits = 0u64;
    for seed in [3u64, 13, 29, 57] {
        let clock = Arc::new(ManualClock::with_tick(Duration::from_micros(50)));
        let (fault, handle) =
            FaultPager::new(MemPager::new(1024), FaultConfig::transient(seed, 300));
        let stack = RetryPager::new(ChecksumPager::new(fault), RetryPolicy::default())
            .with_clock(clock.clone());
        let mut store = SequenceStore::create(stack, 8).expect("create");
        for s in dataset() {
            store.append(&s).expect("append");
        }
        store.flush().expect("flush");
        handle.arm();

        for (i, (q, eps)) in queries().iter().enumerate() {
            let budget = QueryBudget::new()
                .deadline(Duration::from_millis(5))
                .clock(clock.clone());
            let opts = EngineOpts::new()
                .kind(DtwKind::MaxAbs)
                .threads(1)
                .budget(budget);
            match LbScan.range_search(&store, q, *eps, &opts) {
                Ok(out) => {
                    assert!(
                        out.ids().iter().all(|id| expected[i].contains(id)),
                        "seed {seed} query {i}: non-subset answer {:?} vs {:?}",
                        out.ids(),
                        expected[i]
                    );
                    assert!(
                        out.query_stats.accounting_balanced(),
                        "seed {seed} query {i}: {:?}",
                        out.query_stats
                    );
                    match out.termination {
                        Termination::Complete => {
                            assert_eq!(out.ids(), expected[i], "seed {seed} query {i}")
                        }
                        Termination::DeadlineExceeded => deadline_hits += 1,
                        ref other => {
                            panic!("seed {seed} query {i}: unexpected termination {other:?}")
                        }
                    }
                }
                Err(TwError::Storage(e)) => {
                    assert!(
                        e.is_transient() || e.is_corruption(),
                        "seed {seed} query {i}: untyped storage error {e}"
                    );
                }
                Err(other) => panic!("seed {seed} query {i}: unexpected error {other}"),
            }
        }
        assert!(
            handle.stats().transient_faults > 0,
            "seed {seed}: fault schedule never fired"
        );
    }
    assert!(
        deadline_hits > 0,
        "no query ever hit the simulated deadline — the matrix proved nothing"
    );
}

proptest! {
    /// Any single-byte corruption anywhere in a checksummed record is a
    /// decode error — never a successful decode of wrong data.
    #[test]
    fn any_single_byte_corruption_of_a_v2_record_is_detected(
        id in 0u64..1_000_000,
        values in proptest::collection::vec(-1e6f64..1e6, 1..64),
        byte_index in 0usize..1000,
        xor_mask in 1u8..=255,
    ) {
        let clean = encode_record_to_bytes_v2(id, &values);
        let mut bad = clean.to_vec();
        let target = byte_index % bad.len();
        bad[target] ^= xor_mask;

        let mut buf = bytes::Bytes::from(bad);
        match decode_record_v2(&mut buf) {
            Ok(rec) => {
                // A flip in the id or length fields can still checksum-fail;
                // a successful decode with intact payload is impossible
                // because the CRC covers id, length and values.
                prop_assert!(
                    rec.id != id || rec.values != values,
                    "corrupted record decoded byte-identical"
                );
                // ... and that case cannot happen either: any accepted decode
                // would need a CRC collision from a 1-byte flip, which CRC32
                // detects categorically. So reaching here at all is a bug.
                prop_assert!(false, "single-byte corruption went undetected");
            }
            Err(e) => prop_assert!(e.is_corruption() || matches!(e, tw_storage::CodecError::Truncated { .. })),
        }
    }
}

// ---------------------------------------------------------------------------
// WAL replay fault matrix: a write-ahead log must come back from torn tails
// by clean truncation, and from in-extent damage with a typed error — never
// with silently missing or altered acknowledged records.
// ---------------------------------------------------------------------------

const WAL_PAGE: usize = 1024;

fn wal_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twfault-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Write `count` acknowledged (committed) append records and return them.
fn committed_wal(path: &std::path::Path, count: u64) -> Vec<WalRecord> {
    let mut wal = create_wal_file(path, WAL_PAGE).expect("create wal");
    let mut records = Vec::new();
    for id in 0..count {
        let values: Vec<f64> = (0..24).map(|j| (id * 31 + j) as f64 * 0.25).collect();
        let record = WalRecord::AppendSequence { id, values };
        wal.append(&record).expect("append");
        wal.commit().expect("commit");
        records.push(record);
    }
    records
}

/// A crash after staging but before commit leaves a torn tail. Recovery must
/// keep every acknowledged record and discard the tail — clean truncation,
/// not an error, and certainly not replay of unacknowledged data.
#[test]
fn torn_wal_tail_is_discarded_without_losing_acknowledged_records() {
    let dir = wal_temp_dir("torn-tail");
    let path = dir.join("wal.twl");
    let committed = committed_wal(&path, 10);
    {
        // Re-open and stage records WITHOUT committing, then "crash" (drop).
        let (mut wal, replayed, report) = open_wal_file(&path, WAL_PAGE).expect("reopen");
        assert_eq!(replayed, committed, "clean reopen must replay exactly");
        assert!(report.is_clean());
        // Big enough to spill whole pages past the committed extent (the
        // recovery report only counts whole discarded pages, not slack).
        for id in 10..18 {
            wal.append(&WalRecord::AppendSequence {
                id,
                values: vec![1.0; 64],
            })
            .expect("stage");
        }
        assert_eq!(wal.staged_records(), 8);
        // Dropped here: staged pages may be on disk, the header is not.
    }

    let (wal, replayed, report) = open_wal_file(&path, WAL_PAGE).expect("recover");
    assert_eq!(
        replayed, committed,
        "torn tail changed the acknowledged record set"
    );
    assert_eq!(report.committed_records, 10);
    assert!(
        report.uncommitted_tail_bytes > 0,
        "the staged tail should be visible as discarded bytes"
    );
    assert!(!report.is_clean());
    assert_eq!(wal.committed_records(), 10);
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flip INSIDE the committed extent is not recoverable by truncation:
/// an acknowledged record is damaged, and replay must say so with a typed
/// corruption error instead of returning a plausible-but-wrong record set.
#[test]
fn bit_flip_inside_committed_extent_is_typed_corruption() {
    let dir = wal_temp_dir("bit-flip");
    let path = dir.join("wal.twl");
    let committed = committed_wal(&path, 10);
    assert!(committed.len() == 10);

    let mut raw = std::fs::read(&path).expect("read wal file");
    assert!(
        raw.len() > WAL_PAGE + 64,
        "committed extent should span past the first data page"
    );
    // Damage the first data page, well inside the committed extent.
    raw[WAL_PAGE + 40] ^= 0x20;
    std::fs::write(&path, &raw).expect("write damaged wal");

    match open_wal_file(&path, WAL_PAGE) {
        Ok((_, replayed, _)) => {
            // If the stack somehow accepts the file, the acknowledged records
            // must still be byte-identical — anything else is silent loss.
            assert_eq!(replayed, committed, "damaged WAL replayed wrong records");
            panic!("a flipped bit inside the committed extent went undetected");
        }
        Err(e) => assert!(
            e.is_corruption(),
            "expected a typed corruption error, got: {e}"
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chopping whole committed pages off the end of the file (e.g. a filesystem
/// that lost an extent) removes acknowledged data; recovery must fail with a
/// typed error rather than quietly replaying the shortened prefix.
#[test]
fn truncated_committed_extent_is_a_typed_error_never_a_short_replay() {
    let dir = wal_temp_dir("chopped");
    let path = dir.join("wal.twl");
    let committed = committed_wal(&path, 10);

    // Keep the header page and the first data page only.
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open wal file");
    file.set_len(2 * WAL_PAGE as u64).expect("chop file");
    drop(file);

    match open_wal_file(&path, WAL_PAGE) {
        Ok((_, replayed, _)) => {
            assert_eq!(
                replayed, committed,
                "chopped WAL silently replayed a shortened record set"
            );
            panic!("chopped committed extent went undetected");
        }
        Err(e) => {
            // Typed: corruption (header promises more bytes than exist) —
            // the one thing it must never be is a short Ok.
            let msg = e.to_string();
            assert!(
                e.is_corruption() || msg.contains("page") || msg.contains("range"),
                "untyped error for chopped extent: {e}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Short reads during replay zero the tail of a page in transit. The page
/// checksum catches it, and with corrupt-retry enabled a re-read heals it —
/// replay converges to exactly the acknowledged record set.
#[test]
fn short_reads_during_replay_heal_to_the_exact_record_set() {
    let dir = wal_temp_dir("short-read");
    let path = dir.join("wal.twl");
    let committed = committed_wal(&path, 12);

    let mut healed = 0usize;
    for seed in 0..6u64 {
        let (file, _trimmed) = FilePager::open_trimmed(&path, WAL_PAGE).expect("open file");
        let config = FaultConfig {
            short_read_per_mille: 400,
            ..FaultConfig::quiet(seed)
        };
        let (faulty, handle) = FaultPager::new(file, config);
        handle.arm();
        let stack = RetryPager::new(
            ChecksumPager::new(faulty),
            RetryPolicy::default().with_retry_corrupt(),
        );

        let (wal, replayed, report) = Wal::open_recovering(stack).expect("healed replay");
        assert_eq!(
            replayed, committed,
            "seed {seed}: healed replay diverged from the acknowledged set"
        );
        assert_eq!(report.committed_records, 12);
        assert_eq!(wal.committed_records(), 12);
        if handle.stats().short_reads > 0 {
            healed += 1;
        }
    }
    assert!(
        healed > 0,
        "no seed ever fired a short read — matrix is vacuous"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same schedule WITHOUT corrupt-retry: replay may fail, but only with a
/// typed corruption error; any Ok must carry the exact acknowledged records.
#[test]
fn unhealed_short_reads_surface_typed_corruption_never_wrong_records() {
    let dir = wal_temp_dir("short-read-noheal");
    let path = dir.join("wal.twl");
    let committed = committed_wal(&path, 12);

    let mut fired = 0usize;
    let mut failures = 0usize;
    for seed in 0..8u64 {
        let (file, _trimmed) = FilePager::open_trimmed(&path, WAL_PAGE).expect("open file");
        let config = FaultConfig {
            short_read_per_mille: 400,
            ..FaultConfig::quiet(seed)
        };
        let (faulty, handle) = FaultPager::new(file, config);
        handle.arm();
        let stack = RetryPager::new(ChecksumPager::new(faulty), RetryPolicy::default());

        match Wal::open_recovering(stack) {
            Ok((_, replayed, _)) => assert_eq!(
                replayed, committed,
                "seed {seed}: faulted Ok replay diverged from the acknowledged set"
            ),
            Err(e) => {
                assert!(
                    e.is_corruption(),
                    "seed {seed}: untyped error under short reads: {e}"
                );
                failures += 1;
            }
        }
        fired += usize::from(handle.stats().short_reads > 0);
    }
    assert!(
        fired > 0,
        "no seed ever fired a short read — matrix is vacuous"
    );
    assert!(
        failures > 0,
        "no seed ever surfaced the corruption — raise the fault rate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient read faults during replay retry to full recovery: same records,
/// no error, and the fault schedule demonstrably fired.
#[test]
fn transient_faults_during_replay_retry_to_full_recovery() {
    let dir = wal_temp_dir("transient-replay");
    let path = dir.join("wal.twl");
    let committed = committed_wal(&path, 12);

    let mut fired = 0usize;
    for seed in 0..6u64 {
        let (file, _trimmed) = FilePager::open_trimmed(&path, WAL_PAGE).expect("open file");
        let (faulty, handle) = FaultPager::new(file, FaultConfig::transient(seed, 300));
        handle.arm();
        let stack = RetryPager::new(ChecksumPager::new(faulty), RetryPolicy::default());

        let (wal, replayed, report) = Wal::open_recovering(stack).expect("retried replay");
        assert_eq!(
            replayed, committed,
            "seed {seed}: retried replay diverged from the acknowledged set"
        );
        assert!(report.is_clean());
        assert_eq!(wal.committed_records(), 12);
        fired += usize::from(handle.stats().transient_faults > 0);
    }
    assert!(
        fired > 0,
        "no seed ever fired a transient fault — matrix is vacuous"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
