//! Fault-schedule matrix: every search engine, run over a store whose pager
//! injects seeded faults, must either produce results identical to the
//! fault-free run or fail with a *typed* error / degrade to an exact
//! fallback. It must never panic, and it must never silently drop a
//! qualifying sequence — that would break the paper's no-false-dismissal
//! guarantee in the one place a user cannot see it.
//!
//! The protective stack under test is the production one:
//! `RetryPager<ChecksumPager<FaultPager<MemPager>>>` — faults injected at the
//! device level, checksums above them, bounded retry on top.

use proptest::prelude::*;
use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, LbScan, ResilientSearch, SearchEngine, TwSimSearch};
use tw_core::TwError;
use tw_storage::{
    decode_record_v2, encode_record_to_bytes_v2, ChecksumPager, FaultConfig, FaultHandle,
    FaultPager, MemPager, RetryPager, RetryPolicy, SequenceStore,
};
use tw_workload::{generate_random_walks, RandomWalkConfig};

type FaultedStore = SequenceStore<RetryPager<ChecksumPager<FaultPager<MemPager>>>>;

fn dataset() -> Vec<Vec<f64>> {
    generate_random_walks(&RandomWalkConfig::paper(40, 32), 0xA11CE)
}

fn queries() -> Vec<(Vec<f64>, f64)> {
    let data = dataset();
    vec![
        (data[3].clone(), 0.0),
        (data[17].clone(), 0.4),
        (data[8].clone(), 1.5),
        (vec![5.0, 5.5, 6.0, 5.5], 0.8),
    ]
}

/// The ground truth, computed once over an untouched in-memory store.
fn fault_free_answers() -> Vec<Vec<u64>> {
    let mut store = SequenceStore::in_memory();
    for s in dataset() {
        store.append(&s).expect("append");
    }
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    queries()
        .iter()
        .map(|(q, eps)| {
            LbScan
                .range_search(&store, q, *eps, &opts)
                .expect("baseline")
                .ids()
        })
        .collect()
}

/// Builds the production pager stack around a fault injector, populates the
/// store while faults are disarmed, and returns the armed handle.
fn faulted_store(config: FaultConfig, policy: RetryPolicy) -> (FaultedStore, FaultHandle) {
    let (fault, handle) = FaultPager::new(MemPager::new(1024), config);
    let stack = RetryPager::new(ChecksumPager::new(fault), policy);
    let mut store = SequenceStore::create(stack, 8).expect("create");
    for s in dataset() {
        store.append(&s).expect("append");
    }
    store.flush().expect("flush");
    handle.arm();
    (store, handle)
}

#[test]
fn transient_faults_retry_to_identical_results() {
    let expected = fault_free_answers();
    for seed in [1u64, 2, 3, 7, 13] {
        // max_consecutive (2) stays below the retry budget (4 attempts), so
        // every operation eventually succeeds and results must be identical.
        let (store, handle) =
            faulted_store(FaultConfig::transient(seed, 200), RetryPolicy::default());
        let engine = TwSimSearch::build(&store).expect("build index under faults");
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for (i, (q, eps)) in queries().iter().enumerate() {
            let lb = LbScan
                .range_search(&store, q, *eps, &opts)
                .expect("lb-scan under transient faults");
            assert_eq!(lb.ids(), expected[i], "lb-scan seed {seed} query {i}");
            let tw = engine
                .range_search(&store, q, *eps, &opts)
                .expect("tw-sim-search under transient faults");
            assert_eq!(tw.ids(), expected[i], "tw-sim seed {seed} query {i}");
        }
        assert!(
            handle.stats().transient_faults > 0,
            "schedule for seed {seed} never fired — the test proved nothing"
        );
    }
}

#[test]
fn read_bit_flips_heal_when_corrupt_retry_is_enabled() {
    let expected = fault_free_answers();
    for seed in [5u64, 11, 23] {
        // Bit flips happen in transit (the pager mutates the returned
        // buffer, not the stored page), so a checksum failure followed by a
        // re-read observes clean data. With `retry_corrupt` the stack heals
        // and answers must be identical to the fault-free run.
        let (store, handle) = faulted_store(
            FaultConfig::bit_flips(seed, 150),
            RetryPolicy::default().with_retry_corrupt(),
        );
        let engine = TwSimSearch::build(&store).expect("build index under flips");
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for (i, (q, eps)) in queries().iter().enumerate() {
            let lb = LbScan
                .range_search(&store, q, *eps, &opts)
                .expect("lb-scan under healed flips");
            assert_eq!(lb.ids(), expected[i], "lb-scan seed {seed} query {i}");
            let tw = engine
                .range_search(&store, q, *eps, &opts)
                .expect("tw-sim-search under healed flips");
            assert_eq!(tw.ids(), expected[i], "tw-sim seed {seed} query {i}");
        }
        assert!(handle.stats().bit_flips > 0, "seed {seed} never flipped");
    }
}

#[test]
fn unhealed_corruption_is_a_typed_error_never_a_wrong_answer() {
    let expected = fault_free_answers();
    for seed in [4u64, 9, 21, 42] {
        // No corrupt-retry: a flipped read either misses the query's pages
        // (exact answer) or surfaces as a typed corruption error. A wrong
        // answer or a panic is the only unacceptable outcome.
        let (store, _handle) =
            faulted_store(FaultConfig::bit_flips(seed, 120), RetryPolicy::default());
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        for (i, (q, eps)) in queries().iter().enumerate() {
            match LbScan.range_search(&store, q, *eps, &opts) {
                Ok(out) => assert_eq!(out.ids(), expected[i], "seed {seed} query {i}"),
                Err(TwError::Storage(e)) => {
                    assert!(
                        e.is_corruption() || e.is_transient(),
                        "seed {seed} query {i}: untyped storage error {e}"
                    );
                }
                Err(other) => panic!("seed {seed} query {i}: unexpected error {other}"),
            }
        }
    }
}

#[test]
fn corrupt_index_file_degrades_to_the_exact_qualifying_set() {
    let dir = std::env::temp_dir().join(format!("twfault-idx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let idx = dir.join("index.rtree");

    let mut store = SequenceStore::in_memory();
    for s in dataset() {
        store.append(&s).expect("append");
    }
    TwSimSearch::build(&store)
        .expect("build")
        .save_file(&idx)
        .expect("save");

    let expected = fault_free_answers();
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    // Corrupt a different region of the index file each round: wherever the
    // damage lands, the engine answers with exactly the qualifying set.
    let clean = std::fs::read(&idx).expect("read index");
    for frac in [3usize, 5, 7, 11] {
        let mut bad = clean.clone();
        let target = bad.len() * (frac - 1) / frac;
        bad[target] ^= 0x40;
        std::fs::write(&idx, &bad).expect("write corrupted");

        let engine = ResilientSearch::from_index_file(&idx, Some(store.len()));
        assert!(engine.is_index_offline(), "corruption at {target} missed");
        for (i, (q, eps)) in queries().iter().enumerate() {
            let out = engine
                .range_search(&store, q, *eps, &opts)
                .expect("degraded query");
            assert_eq!(out.ids(), expected[i], "frac {frac} query {i}");
            assert!(out.health.is_degraded());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_and_transient_writes_never_corrupt_acknowledged_data() {
    // Writes that tear persist a prefix and report failure; the retry layer
    // rewrites the page. Appends that fail after the retry budget are NOT
    // acknowledged — the invariant is that every append that returned Ok is
    // readable afterwards.
    for seed in [6u64, 19, 31] {
        let (fault, handle) = FaultPager::new(
            MemPager::new(1024),
            FaultConfig {
                torn_write_per_mille: 150,
                transient_write_per_mille: 100,
                ..FaultConfig::quiet(seed)
            },
        );
        let stack = RetryPager::new(ChecksumPager::new(fault), RetryPolicy::default());
        let mut store = SequenceStore::create(stack, 8).expect("create");
        handle.arm();
        let mut acknowledged = Vec::new();
        for (i, s) in dataset().iter().enumerate() {
            if let Ok(id) = store.append(s) {
                acknowledged.push((id, i));
            }
        }
        handle.disarm();
        for (id, i) in &acknowledged {
            assert_eq!(
                store.get(*id).expect("acknowledged read"),
                dataset()[*i],
                "seed {seed} id {id}"
            );
        }
        assert!(handle.stats().injected() > 0, "seed {seed} never fired");
    }
}

#[test]
fn deadline_under_fault_storm_stays_exact_and_typed() {
    // The governor × fault cross-matrix: a 5 ms (simulated) deadline over a
    // store whose pager is having a transient-fault storm. The shared
    // `ManualClock` drives both sides — retry backoff sleeps advance the
    // same simulated time the deadline is measured against — so the
    // interaction is deterministic. Every query must end one of three ways:
    // complete with the exact answer, deadline-exceeded with an exact
    // subset and a balanced ledger, or a *typed* transient/corruption
    // error (the governor aborts retry loops, surfacing the device error).
    use std::sync::Arc;
    use std::time::Duration;
    use tw_core::govern::{ManualClock, QueryBudget, Termination};

    let expected = fault_free_answers();
    let mut deadline_hits = 0u64;
    for seed in [3u64, 13, 29, 57] {
        let clock = Arc::new(ManualClock::with_tick(Duration::from_micros(50)));
        let (fault, handle) =
            FaultPager::new(MemPager::new(1024), FaultConfig::transient(seed, 300));
        let stack = RetryPager::new(ChecksumPager::new(fault), RetryPolicy::default())
            .with_clock(clock.clone());
        let mut store = SequenceStore::create(stack, 8).expect("create");
        for s in dataset() {
            store.append(&s).expect("append");
        }
        store.flush().expect("flush");
        handle.arm();

        for (i, (q, eps)) in queries().iter().enumerate() {
            let budget = QueryBudget::new()
                .deadline(Duration::from_millis(5))
                .clock(clock.clone());
            let opts = EngineOpts::new()
                .kind(DtwKind::MaxAbs)
                .threads(1)
                .budget(budget);
            match LbScan.range_search(&store, q, *eps, &opts) {
                Ok(out) => {
                    assert!(
                        out.ids().iter().all(|id| expected[i].contains(id)),
                        "seed {seed} query {i}: non-subset answer {:?} vs {:?}",
                        out.ids(),
                        expected[i]
                    );
                    assert!(
                        out.query_stats.accounting_balanced(),
                        "seed {seed} query {i}: {:?}",
                        out.query_stats
                    );
                    match out.termination {
                        Termination::Complete => {
                            assert_eq!(out.ids(), expected[i], "seed {seed} query {i}")
                        }
                        Termination::DeadlineExceeded => deadline_hits += 1,
                        ref other => {
                            panic!("seed {seed} query {i}: unexpected termination {other:?}")
                        }
                    }
                }
                Err(TwError::Storage(e)) => {
                    assert!(
                        e.is_transient() || e.is_corruption(),
                        "seed {seed} query {i}: untyped storage error {e}"
                    );
                }
                Err(other) => panic!("seed {seed} query {i}: unexpected error {other}"),
            }
        }
        assert!(
            handle.stats().transient_faults > 0,
            "seed {seed}: fault schedule never fired"
        );
    }
    assert!(
        deadline_hits > 0,
        "no query ever hit the simulated deadline — the matrix proved nothing"
    );
}

proptest! {
    /// Any single-byte corruption anywhere in a checksummed record is a
    /// decode error — never a successful decode of wrong data.
    #[test]
    fn any_single_byte_corruption_of_a_v2_record_is_detected(
        id in 0u64..1_000_000,
        values in proptest::collection::vec(-1e6f64..1e6, 1..64),
        byte_index in 0usize..1000,
        xor_mask in 1u8..=255,
    ) {
        let clean = encode_record_to_bytes_v2(id, &values);
        let mut bad = clean.to_vec();
        let target = byte_index % bad.len();
        bad[target] ^= xor_mask;

        let mut buf = bytes::Bytes::from(bad);
        match decode_record_v2(&mut buf) {
            Ok(rec) => {
                // A flip in the id or length fields can still checksum-fail;
                // a successful decode with intact payload is impossible
                // because the CRC covers id, length and values.
                prop_assert!(
                    rec.id != id || rec.values != values,
                    "corrupted record decoded byte-identical"
                );
                // ... and that case cannot happen either: any accepted decode
                // would need a CRC collision from a 1-byte flip, which CRC32
                // detects categorically. So reaching here at all is a bug.
                prop_assert!(false, "single-byte corruption went undetected");
            }
            Err(e) => prop_assert!(e.is_corruption() || matches!(e, tw_storage::CodecError::Truncated { .. })),
        }
    }
}
