//! The paper's qualitative claims as regression tests, at miniature scale:
//! every assertion here is a sentence from §5.2 ("The results reveal
//! that..."), so a change that breaks the reproduction's *shape* fails CI
//! even though absolute numbers are hardware-free.

use std::time::Duration;

use tw_bench::experiments::stock_dataset;
use tw_bench::runner::{build_store, run_batch, Engines, Method};
use tw_core::distance::DtwKind;
use tw_storage::HardwareModel;
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

/// §5.2, Experiment 1: "TW-Sim-Search has the filtering effect slightly
/// better than ST-Filter that is much better than LB-Scan", with Naive-Scan
/// as the floor (its candidates are the true result).
#[test]
fn fig2_shape_filter_ordering() {
    let data = stock_dataset(1);
    let store = build_store(&data);
    let engines = Engines::build(&store, &Method::ALL);
    let queries = generate_queries(&data, 6, 2);
    let outcome = run_batch(
        &store,
        &engines,
        &queries,
        0.2,
        DtwKind::MaxAbs,
        &Method::ALL,
    );

    let ratio = |m: Method| outcome.get(m).unwrap().mean_candidate_ratio();
    let truth = ratio(Method::NaiveScan);
    let tw = ratio(Method::TwSimSearch);
    let st = ratio(Method::StFilter);
    let lb = ratio(Method::LbScan);

    assert!(truth <= tw, "truth {truth} must lower-bound tw {tw}");
    // The paper finds TW-Sim-Search "slightly better" than ST-Filter; at
    // miniature query counts the two trade places within noise, so assert
    // closeness-to-truth rather than a strict ordering between them.
    assert!(
        tw <= truth + 0.01,
        "tw ratio {tw} must stay within 1pp of the truth {truth}"
    );
    assert!(tw < lb, "tw {tw} must filter much better than lb {lb}");
    assert!(
        st < lb,
        "st {st} must filter much better than lb {lb} on stock data"
    );
}

/// §5.2, Experiment 2: TW-Sim-Search beats every scan on the modeled
/// hardware, and the gain grows as the tolerance shrinks.
#[test]
fn fig3_shape_speedup_grows_as_tolerance_shrinks() {
    let data = stock_dataset(1);
    let store = build_store(&data);
    let methods = [Method::NaiveScan, Method::LbScan, Method::TwSimSearch];
    let engines = Engines::build(&store, &methods);
    let queries = generate_queries(&data, 6, 2);
    let hw = HardwareModel::icde2001();

    let speedup_at = |eps: f64| {
        let outcome = run_batch(&store, &engines, &queries, eps, DtwKind::MaxAbs, &methods);
        let best_scan = methods[..2]
            .iter()
            .map(|&m| outcome.get(m).unwrap().mean_modeled_elapsed(&hw))
            .min()
            .unwrap();
        let tw = outcome
            .get(Method::TwSimSearch)
            .unwrap()
            .mean_modeled_elapsed(&hw);
        best_scan.as_secs_f64() / tw.as_secs_f64()
    };
    let tight = speedup_at(0.05);
    let loose = speedup_at(0.3);
    assert!(tight > 1.0, "index must win at tight tolerance: {tight}");
    assert!(
        tight > loose,
        "gain must grow as tolerance shrinks: {tight} vs {loose}"
    );
}

/// §5.2, Experiment 3: scans grow linearly with the number of sequences
/// while TW-Sim-Search stays nearly constant.
#[test]
fn fig4_shape_index_flat_scans_linear() {
    let methods = [Method::NaiveScan, Method::TwSimSearch];
    let hw = HardwareModel::icde2001();
    let mut scan_times: Vec<Duration> = Vec::new();
    let mut tw_times: Vec<Duration> = Vec::new();
    for n in [300usize, 1_200, 4_800] {
        let data = generate_random_walks(&RandomWalkConfig::paper(n, 120), 3);
        let store = build_store(&data);
        let engines = Engines::build(&store, &methods);
        let queries = generate_queries(&data, 3, 4);
        let outcome = run_batch(&store, &engines, &queries, 0.1, DtwKind::MaxAbs, &methods);
        scan_times.push(
            outcome
                .get(Method::NaiveScan)
                .unwrap()
                .mean_modeled_elapsed(&hw),
        );
        tw_times.push(
            outcome
                .get(Method::TwSimSearch)
                .unwrap()
                .mean_modeled_elapsed(&hw),
        );
    }
    // The scan grows ~16x over a 16x size range; allow generous slack.
    let scan_growth = scan_times[2].as_secs_f64() / scan_times[0].as_secs_f64();
    assert!(scan_growth > 6.0, "scan must grow linearly: {scan_times:?}");
    // The index grows far slower than the database.
    let tw_growth = tw_times[2].as_secs_f64() / tw_times[0].as_secs_f64();
    assert!(
        tw_growth < scan_growth / 2.0,
        "index must stay nearly flat: tw {tw_times:?} vs scan {scan_times:?}"
    );
}

/// §5.2, Experiment 4: same trend over sequence *length*.
#[test]
fn fig5_shape_over_length() {
    let methods = [Method::NaiveScan, Method::TwSimSearch];
    let hw = HardwareModel::icde2001();
    let mut speedups = Vec::new();
    for len in [60usize, 240, 960] {
        let data = generate_random_walks(&RandomWalkConfig::paper(400, len), 5);
        let store = build_store(&data);
        let engines = Engines::build(&store, &methods);
        let queries = generate_queries(&data, 3, 6);
        let outcome = run_batch(&store, &engines, &queries, 0.1, DtwKind::MaxAbs, &methods);
        let scan = outcome
            .get(Method::NaiveScan)
            .unwrap()
            .mean_modeled_elapsed(&hw);
        let tw = outcome
            .get(Method::TwSimSearch)
            .unwrap()
            .mean_modeled_elapsed(&hw);
        speedups.push(scan.as_secs_f64() / tw.as_secs_f64());
    }
    assert!(
        speedups.last().unwrap() > speedups.first().unwrap(),
        "gain must grow with sequence length: {speedups:?}"
    );
}

/// §5.2, Experiment 2's structural remark: the R-tree is a small fraction of
/// the database ("less than 4% of the database size").
#[test]
fn index_size_fraction_of_database() {
    let data = stock_dataset(1);
    let store = build_store(&data);
    let engines = Engines::build(&store, &[Method::TwSimSearch]);
    let tree = engines.tw_sim.as_ref().unwrap().tree();
    let index_bytes = tree.node_count() * 1024;
    let db_bytes = store.data_bytes() as usize;
    assert!(
        (index_bytes as f64) < 0.06 * db_bytes as f64,
        "index {index_bytes}B vs db {db_bytes}B"
    );
}
