//! On-disk format stability: the serialized layouts of the sequence store,
//! the R-tree and the suffix tree are public contracts (the CLI and the
//! database facade write them to user files). These tests pin the headers
//! and representative byte layouts so accidental format changes fail loudly
//! instead of corrupting user data silently.
//!
//! The current formats are the checksummed v2 generation (store headers and
//! records carry CRC32s, R-tree files are "TWR2"); the unchecksummed v1
//! layouts remain readable through the compat path and are pinned here too.

use tw_rtree::{Point, RTree, RTreeConfig, SplitAlgorithm};
use tw_storage::{
    encode_record_to_bytes, encode_record_to_bytes_v2, open_sequence_file, MemPager, Pager,
    RecordFormat, SequenceStore, StoreError,
};
use tw_suffix::SuffixTree;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twfmt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn record_codec_v1_layout_is_pinned() {
    // v1 record := id:u64le len:u32le values:[f64le]
    let bytes = encode_record_to_bytes(0x0102_0304_0506_0708, &[1.0]);
    assert_eq!(bytes.len(), 8 + 4 + 8);
    assert_eq!(
        &bytes[..8],
        &[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
    );
    assert_eq!(&bytes[8..12], &[1, 0, 0, 0]);
    assert_eq!(&bytes[12..20], &1.0f64.to_le_bytes());
}

#[test]
fn record_codec_v2_layout_is_pinned() {
    // v2 record := id:u64le len:u32le crc:u32le values:[f64le] — exactly v1
    // with a CRC32 spliced in after the length.
    let v1 = encode_record_to_bytes(0x0102_0304_0506_0708, &[1.0, 2.0]);
    let v2 = encode_record_to_bytes_v2(0x0102_0304_0506_0708, &[1.0, 2.0]);
    assert_eq!(v2.len(), v1.len() + 4);
    assert_eq!(&v2[..12], &v1[..12], "id and len unchanged");
    assert_eq!(&v2[16..], &v1[12..], "values unchanged");
    // The CRC field is over id ‖ len ‖ values, so it is deterministic.
    let again = encode_record_to_bytes_v2(0x0102_0304_0506_0708, &[1.0, 2.0]);
    assert_eq!(v2, again);
}

#[test]
fn store_header_v2_is_pinned() {
    // The current header layout: magic "TWS1" (0x54575331 LE), version 2,
    // page format u32, reserved u32, count u64, data bytes u64, then a CRC32
    // over the preceding 32 bytes. Written through a plain file pager so the
    // raw bytes are directly inspectable (page format 1 = plain pages).
    let dir = temp_dir("pin");
    let path = dir.join("pin.tws");
    {
        let pager = tw_storage::FilePager::create(&path, 1024).expect("create");
        let mut store = SequenceStore::create(pager, 4).expect("store");
        store.append(&[3.0, 4.0]).expect("append");
        store.flush().expect("flush");
    }
    let raw = std::fs::read(&path).expect("read file");
    assert_eq!(&raw[0..4], &0x5457_5331u32.to_le_bytes(), "magic");
    assert_eq!(&raw[4..8], &2u32.to_le_bytes(), "version");
    assert_eq!(&raw[8..12], &1u32.to_le_bytes(), "page format (plain)");
    assert_eq!(&raw[12..16], &0u32.to_le_bytes(), "reserved");
    assert_eq!(&raw[16..24], &1u64.to_le_bytes(), "sequence count");
    // Header CRC at 32..36 protects the preceding fields: flipping a header
    // byte must make the open fail instead of trusting the damage.
    let mut bad = raw.clone();
    bad[17] ^= 0xFF; // count now wrong, CRC now stale
    std::fs::write(&path, &bad).expect("write corrupted");
    assert!(open_sequence_file(&path, 1024, 4).is_err());
    std::fs::remove_dir_all(&dir).ok();

    // Open path validates the magic; garbage must be rejected.
    let mut garbage = MemPager::new(1024);
    garbage.allocate().unwrap();
    assert!(SequenceStore::open(garbage, 4).is_err());
}

#[test]
fn legacy_v1_store_file_decodes_via_compat_path() {
    // A hand-built v1-generation file (version 1 header, unchecksummed
    // records, plain pages): the auto-opening path must read it and keep it
    // in v1 format rather than upgrading or rejecting it.
    let dir = temp_dir("v1compat");
    let path = dir.join("legacy.tws");
    let record = encode_record_to_bytes(0, &[3.0, 4.0]);
    let mut raw = Vec::new();
    raw.extend_from_slice(&0x5457_5331u32.to_le_bytes()); // magic
    raw.extend_from_slice(&1u32.to_le_bytes()); // version 1
    raw.extend_from_slice(&1u64.to_le_bytes()); // count
    raw.extend_from_slice(&(record.len() as u64).to_le_bytes()); // data bytes
    raw.resize(1024, 0); // header page
    raw.extend_from_slice(&record);
    raw.resize(2048, 0); // one data page
    std::fs::write(&path, &raw).expect("write fixture");

    let (store, report) = open_sequence_file(&path, 1024, 4).expect("open v1");
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(store.record_format(), RecordFormat::V1);
    assert_eq!(store.get(0).expect("get"), vec![3.0, 4.0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_store_version_is_rejected_with_a_clear_error() {
    let dir = temp_dir("future");
    let path = dir.join("future.tws");
    let mut raw = Vec::new();
    raw.extend_from_slice(&0x5457_5331u32.to_le_bytes());
    raw.extend_from_slice(&9u32.to_le_bytes()); // a version from the future
    raw.resize(1024, 0);
    std::fs::write(&path, &raw).expect("write fixture");

    match open_sequence_file(&path, 1024, 4) {
        Err(StoreError::UnsupportedVersion(9)) => {}
        Err(other) => panic!("expected UnsupportedVersion(9), got {other:?}"),
        Ok(_) => panic!("a future-version store must not open"),
    }
    let message = match open_sequence_file(&path, 1024, 4) {
        Err(e) => e.to_string(),
        Ok(_) => unreachable!(),
    };
    assert!(message.contains('9'), "{message}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rtree_file_header_is_pinned() {
    let mut tree: RTree<2> = RTree::new(RTreeConfig {
        max_entries: 4,
        min_entries: 2,
        split: SplitAlgorithm::Quadratic,
    });
    tree.insert_point(Point::new([1.0, 2.0]), 7);
    let bytes = tree.to_bytes(1024);
    // magic "TWR2" = 0x54575232 little-endian (the checksummed generation).
    assert_eq!(&bytes[0..4], &0x5457_5232u32.to_le_bytes());
    // dimension = 2
    assert_eq!(&bytes[4..8], &2u32.to_le_bytes());
    // page size = 1024
    assert_eq!(&bytes[8..12], &1024u32.to_le_bytes());
    // one node (a single leaf) and root page 0
    assert_eq!(&bytes[12..16], &1u32.to_le_bytes());
    assert_eq!(&bytes[16..20], &0u32.to_le_bytes());
    // 44-byte header, then one CRC table slot per page, then whole pages
    let pages = 1;
    assert_eq!((bytes.len() - 44 - 4 * pages) % 1024, 0);
    assert_eq!(bytes.len(), 44 + 4 * pages + 1024 * pages);
}

#[test]
fn rtree_page_corruption_is_detected_at_decode() {
    let mut tree: RTree<2> = RTree::new(RTreeConfig {
        max_entries: 4,
        min_entries: 2,
        split: SplitAlgorithm::Quadratic,
    });
    for i in 0..64 {
        tree.insert_point(Point::new([i as f64, (i * 2) as f64]), i);
    }
    let bytes = tree.to_bytes(1024).to_vec();
    // Flip a bit inside the page region: the per-page CRC must catch it.
    let mut bad = bytes.clone();
    let target = bytes.len() - 100;
    bad[target] ^= 0x20;
    assert!(RTree::<2>::from_bytes(bytes::Bytes::from(bad)).is_err());
    // The untouched buffer still decodes.
    assert!(RTree::<2>::from_bytes(bytes::Bytes::from(bytes)).is_ok());
}

#[test]
fn suffix_tree_header_is_pinned() {
    let tree = SuffixTree::build(&[vec![1, 2, 1]], 1 << 16);
    let bytes = tree.to_bytes();
    // magic "TWS2" = 0x54575332 little-endian.
    assert_eq!(&bytes[0..4], &0x5457_5332u32.to_le_bytes());
    // sentinel base
    assert_eq!(&bytes[4..8], &(1u32 << 16).to_le_bytes());
    // one string, text length 4 (3 symbols + terminator)
    assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
    assert_eq!(&bytes[12..16], &4u32.to_le_bytes());
    // decoding our own bytes always works
    let back = SuffixTree::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(back.node_count(), tree.node_count());
}

#[test]
fn cross_version_decode_rejects_foreign_magic() {
    // A store page fed to the R-tree decoder (and vice versa) must fail on
    // the magic check, not misparse.
    let mut store = SequenceStore::in_memory();
    store.append(&[1.0]).expect("append");
    let tree_bytes = {
        let mut t: RTree<2> = RTree::new(RTreeConfig {
            max_entries: 4,
            min_entries: 2,
            split: SplitAlgorithm::Linear,
        });
        t.insert_point(Point::new([0.0, 0.0]), 1);
        t.to_bytes(1024)
    };
    assert!(SuffixTree::from_bytes(&tree_bytes).is_err());
    let suffix_bytes = SuffixTree::build(&[vec![1]], 1 << 16).to_bytes();
    assert!(RTree::<2>::from_bytes(bytes::Bytes::from(suffix_bytes)).is_err());
}
