//! On-disk format stability: the serialized layouts of the sequence store,
//! the R-tree and the suffix tree are public contracts (the CLI and the
//! database facade write them to user files). These tests pin the headers
//! and representative byte layouts so accidental format changes fail loudly
//! instead of corrupting user data silently.

use tw_rtree::{Point, RTree, RTreeConfig, SplitAlgorithm};
use tw_storage::{encode_record_to_bytes, MemPager, Pager, SequenceStore};
use tw_suffix::SuffixTree;

#[test]
fn record_codec_layout_is_pinned() {
    // record := id:u64le len:u32le values:[f64le]
    let bytes = encode_record_to_bytes(0x0102_0304_0506_0708, &[1.0]);
    assert_eq!(bytes.len(), 8 + 4 + 8);
    assert_eq!(
        &bytes[..8],
        &[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
    );
    assert_eq!(&bytes[8..12], &[1, 0, 0, 0]);
    assert_eq!(&bytes[12..20], &1.0f64.to_le_bytes());
}

#[test]
fn store_header_magic_is_pinned() {
    // The header page layout: magic "TWS1" (0x54575331 LE), version 1,
    // count u64, data bytes u64. Write through the store, read the raw
    // header page back via a file round-trip.
    let dir = std::env::temp_dir().join(format!("twfmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("pin.tws");
    {
        let pager = tw_storage::FilePager::create(&path, 1024).expect("create");
        let mut store = SequenceStore::create(pager, 4).expect("store");
        store.append(&[3.0, 4.0]).expect("append");
        store.flush().expect("flush");
    }
    let raw = std::fs::read(&path).expect("read file");
    assert_eq!(&raw[0..4], &0x5457_5331u32.to_le_bytes(), "magic");
    assert_eq!(&raw[4..8], &1u32.to_le_bytes(), "version");
    assert_eq!(&raw[8..16], &1u64.to_le_bytes(), "sequence count");
    std::fs::remove_dir_all(&dir).ok();

    // Open path validates the magic; garbage must be rejected.
    let mut garbage = MemPager::new(1024);
    garbage.allocate().unwrap();
    assert!(SequenceStore::open(garbage, 4).is_err());
}

#[test]
fn rtree_file_header_is_pinned() {
    let mut tree: RTree<2> = RTree::new(RTreeConfig {
        max_entries: 4,
        min_entries: 2,
        split: SplitAlgorithm::Quadratic,
    });
    tree.insert_point(Point::new([1.0, 2.0]), 7);
    let bytes = tree.to_bytes(1024);
    // magic "TWR1" = 0x54575231 little-endian.
    assert_eq!(&bytes[0..4], &0x5457_5231u32.to_le_bytes());
    // dimension = 2
    assert_eq!(&bytes[4..8], &2u32.to_le_bytes());
    // page size = 1024
    assert_eq!(&bytes[8..12], &1024u32.to_le_bytes());
    // one node (a single leaf) and root page 0
    assert_eq!(&bytes[12..16], &1u32.to_le_bytes());
    assert_eq!(&bytes[16..20], &0u32.to_le_bytes());
    // header is 40 bytes, then whole pages
    assert_eq!((bytes.len() - 40) % 1024, 0);
}

#[test]
fn suffix_tree_header_is_pinned() {
    let tree = SuffixTree::build(&[vec![1, 2, 1]], 1 << 16);
    let bytes = tree.to_bytes();
    // magic "TWS2" = 0x54575332 little-endian.
    assert_eq!(&bytes[0..4], &0x5457_5332u32.to_le_bytes());
    // sentinel base
    assert_eq!(&bytes[4..8], &(1u32 << 16).to_le_bytes());
    // one string, text length 4 (3 symbols + terminator)
    assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
    assert_eq!(&bytes[12..16], &4u32.to_le_bytes());
    // decoding our own bytes always works
    let back = SuffixTree::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(back.node_count(), tree.node_count());
}

#[test]
fn cross_version_decode_rejects_foreign_magic() {
    // A store page fed to the R-tree decoder (and vice versa) must fail on
    // the magic check, not misparse.
    let mut store = SequenceStore::in_memory();
    store.append(&[1.0]).expect("append");
    let tree_bytes = {
        let mut t: RTree<2> = RTree::new(RTreeConfig {
            max_entries: 4,
            min_entries: 2,
            split: SplitAlgorithm::Linear,
        });
        t.insert_point(Point::new([0.0, 0.0]), 1);
        t.to_bytes(1024)
    };
    assert!(SuffixTree::from_bytes(&tree_bytes).is_err());
    let suffix_bytes = SuffixTree::build(&[vec![1]], 1 << 16).to_bytes();
    assert!(RTree::<2>::from_bytes(bytes::Bytes::from(suffix_bytes)).is_err());
}
