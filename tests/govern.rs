//! Integration tests of the query governor: deadlines, resource budgets,
//! cooperative cancellation, and admission control.
//!
//! The contract under test:
//!
//! * **No budget, no change** — an unarmed (or unreachable) budget leaves
//!   every engine's answer and ledger exactly as before.
//! * **Partial results are exact** — a query cut short by any budget returns
//!   a *subset* of the unbudgeted answer (every reported distance was
//!   verified with the exact DTW), never a superset or an approximation.
//! * **The ledger still balances** — candidates that never got a verdict are
//!   counted as `skipped_unverified`, so
//!   `candidates == pruned + verified + abandoned + skipped` holds under
//!   cancellation too.
//! * **Deadlines are mockable and honoured** — with a `ManualClock` the
//!   trip point is deterministic; with the real clock a 5 ms deadline
//!   returns well before a full scan would.
//! * **Overload sheds instead of queueing unboundedly** — an
//!   `AdmissionGate` at capacity answers `Termination::Shed` without
//!   touching the store.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tw_core::distance::{dtw, DtwKind};
use tw_core::govern::{AdmissionGate, BudgetKind, ManualClock, QueryBudget, Termination};
use tw_core::search::{
    EngineOpts, FastMapSearch, HybridSearch, LbScan, Match, NaiveScan, ResilientSearch,
    SearchEngine, StFilterSearch, SubsequenceIndex, TwSimSearch, WindowSpec,
};
use tw_storage::{MemPager, SequenceStore};
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

/// All seven range engines.
fn all_engines(store: &SequenceStore<MemPager>) -> Vec<Box<dyn SearchEngine<MemPager>>> {
    vec![
        Box::new(NaiveScan),
        Box::new(LbScan),
        Box::new(StFilterSearch::build(store).expect("build st-filter")),
        Box::new(TwSimSearch::build(store).expect("build tw-sim")),
        Box::new(FastMapSearch::build(store, 2, DtwKind::MaxAbs, 7).expect("fit fastmap")),
        Box::new(HybridSearch::build(store).expect("build hybrid")),
        Box::new(ResilientSearch::new(
            TwSimSearch::build(store).expect("build tw-sim for resilient"),
        )),
    ]
}

/// Every `(id, distance)` of `sub` appears identically in `full`.
fn is_exact_subset(sub: &[Match], full: &[Match]) -> bool {
    sub.iter().all(|m| {
        full.iter()
            .any(|f| f.id == m.id && f.distance == m.distance)
    })
}

#[test]
fn generous_budget_changes_nothing() {
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 35), 201);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 202).remove(0);

    for engine in &all_engines(&store) {
        let plain = engine
            .range_search(
                &store,
                &query,
                0.3,
                &EngineOpts::new().kind(DtwKind::MaxAbs).threads(1),
            )
            .expect("ungoverned");
        let budget = QueryBudget::new()
            .deadline(Duration::from_secs(3600))
            .max_cells(u64::MAX / 2)
            .max_candidate_bytes(u64::MAX / 2)
            .max_pager_reads(u64::MAX / 2);
        let governed = engine
            .range_search(
                &store,
                &query,
                0.3,
                &EngineOpts::new()
                    .kind(DtwKind::MaxAbs)
                    .threads(1)
                    .budget(budget),
            )
            .expect("governed");
        assert!(plain.termination.is_complete(), "{}", engine.name());
        assert!(governed.termination.is_complete(), "{}", engine.name());
        assert_eq!(plain.ids(), governed.ids(), "{}", engine.name());
        assert!(
            governed.query_stats.counters_eq(&plain.query_stats),
            "{}: {:?} vs {:?}",
            engine.name(),
            governed.query_stats,
            plain.query_stats
        );
    }
}

#[test]
fn cell_budget_returns_exact_subset_with_balanced_ledger() {
    let data = generate_random_walks(&RandomWalkConfig::paper(80, 40), 211);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 212).remove(0);

    for engine in &all_engines(&store) {
        let full = engine
            .range_search(
                &store,
                &query,
                0.5,
                &EngineOpts::new().kind(DtwKind::MaxAbs).threads(1),
            )
            .expect("full run");
        for max_cells in [1u64, 100, 2_000, 50_000] {
            let out = engine
                .range_search(
                    &store,
                    &query,
                    0.5,
                    &EngineOpts::new()
                        .kind(DtwKind::MaxAbs)
                        .threads(1)
                        .budget(QueryBudget::new().max_cells(max_cells)),
                )
                .unwrap_or_else(|e| panic!("{} cells={max_cells}: {e:?}", engine.name()));
            let name = engine.name();
            assert!(
                is_exact_subset(&out.matches, &full.matches),
                "{name} cells={max_cells}: budgeted answer is not a subset"
            );
            assert!(
                out.query_stats.accounting_balanced(),
                "{name} cells={max_cells}: {:?}",
                out.query_stats
            );
            match out.termination {
                Termination::Complete => {
                    assert_eq!(out.ids(), full.ids(), "{name} cells={max_cells}")
                }
                Termination::BudgetExhausted {
                    which: BudgetKind::DtwCells,
                } => {}
                ref other => panic!("{name} cells={max_cells}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn byte_budget_trips_and_stays_exact() {
    let data = generate_random_walks(&RandomWalkConfig::paper(50, 30), 221);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 222).remove(0);

    for engine in &all_engines(&store) {
        let full = engine
            .range_search(
                &store,
                &query,
                0.5,
                &EngineOpts::new().kind(DtwKind::MaxAbs).threads(1),
            )
            .expect("full run");
        let out = engine
            .range_search(
                &store,
                &query,
                0.5,
                &EngineOpts::new()
                    .kind(DtwKind::MaxAbs)
                    .threads(1)
                    .budget(QueryBudget::new().max_candidate_bytes(1)),
            )
            .expect("byte-budgeted run");
        assert!(
            is_exact_subset(&out.matches, &full.matches),
            "{}: not a subset",
            engine.name()
        );
        assert!(
            out.query_stats.accounting_balanced(),
            "{}: {:?}",
            engine.name(),
            out.query_stats
        );
    }
}

#[test]
fn manual_clock_deadline_is_deterministic() {
    let data = generate_random_walks(&RandomWalkConfig::paper(120, 40), 231);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 232).remove(0);
    let engine = LbScan;

    let full = engine
        .range_search(
            &store,
            &query,
            0.5,
            &EngineOpts::new().kind(DtwKind::MaxAbs).threads(1),
        )
        .expect("full run");

    let run = || {
        // Every clock read advances simulated time by 1 ms; a 10 ms deadline
        // therefore trips on exactly the same cancellation check each run.
        let clock = Arc::new(ManualClock::with_tick(Duration::from_millis(1)));
        let budget = QueryBudget::new()
            .deadline(Duration::from_millis(10))
            .clock(clock);
        engine
            .range_search(
                &store,
                &query,
                0.5,
                &EngineOpts::new()
                    .kind(DtwKind::MaxAbs)
                    .threads(1)
                    .budget(budget),
            )
            .expect("deadlined run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.termination, Termination::DeadlineExceeded);
    assert_eq!(a.termination, b.termination);
    assert_eq!(a.ids(), b.ids(), "simulated deadline must be deterministic");
    assert!(a.query_stats.counters_eq(&b.query_stats));
    assert!(is_exact_subset(&a.matches, &full.matches));
    assert!(a.query_stats.accounting_balanced(), "{:?}", a.query_stats);
    assert!(a.query_stats.skipped_unverified > 0, "{:?}", a.query_stats);
}

#[test]
fn real_deadline_bounds_latency() {
    // A corpus big enough that the full scan takes well over the deadline.
    let data = generate_random_walks(&RandomWalkConfig::paper(600, 80), 241);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 242).remove(0);

    let budget = QueryBudget::new().deadline(Duration::from_millis(5));
    let started = std::time::Instant::now();
    let out = NaiveScan
        .range_search(
            &store,
            &query,
            0.5,
            &EngineOpts::new().kind(DtwKind::MaxAbs).budget(budget),
        )
        .expect("deadlined scan");
    let elapsed = started.elapsed();
    // 10x headroom over the 5 ms deadline absorbs scheduler noise while
    // still proving the scan did not run to completion on the clock's time.
    assert!(
        elapsed < Duration::from_millis(50),
        "5 ms deadline took {elapsed:?}"
    );
    assert!(
        out.query_stats.accounting_balanced(),
        "{:?}",
        out.query_stats
    );
}

#[test]
fn admission_gate_sheds_at_capacity_and_recovers() {
    let data = generate_random_walks(&RandomWalkConfig::paper(40, 30), 251);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 252).remove(0);
    let gate = AdmissionGate::new(1, 0);
    let engine = ResilientSearch::new(TwSimSearch::build(&store).expect("build"))
        .with_admission(gate.clone());

    // Fill the single slot from outside; with a zero-length queue the next
    // query must shed immediately — no blocking, no store access.
    let permit = match gate.admit() {
        tw_core::govern::Admission::Granted(p) => p,
        tw_core::govern::Admission::Shed => panic!("empty gate shed"),
    };
    let out = engine
        .range_search(
            &store,
            &query,
            0.3,
            &EngineOpts::new().kind(DtwKind::MaxAbs),
        )
        .expect("shed query");
    assert_eq!(out.termination, Termination::Shed);
    assert!(out.matches.is_empty());
    assert_eq!(out.query_stats.candidates, 0, "shed query did work");
    assert_eq!(gate.shed_count(), 1);

    // Releasing the slot restores service, and the answer is complete.
    drop(permit);
    let out = engine
        .range_search(
            &store,
            &query,
            0.3,
            &EngineOpts::new().kind(DtwKind::MaxAbs),
        )
        .expect("recovered query");
    assert!(out.termination.is_complete());
    assert_eq!(gate.shed_count(), 1);
    assert_eq!(gate.active(), 0, "permit leaked");
}

#[test]
fn admission_gate_queues_concurrent_queries_without_shedding() {
    let data = generate_random_walks(&RandomWalkConfig::paper(40, 30), 261);
    let gate = AdmissionGate::new(2, 16);
    let queries = generate_queries(&data, 8, 262);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for query in &queries {
            let gate = gate.clone();
            let data = &data;
            handles.push(scope.spawn(move || {
                let store = store_with(data);
                let engine = ResilientSearch::new(TwSimSearch::build(&store).expect("build"))
                    .with_admission(gate);
                engine
                    .range_search(&store, query, 0.3, &EngineOpts::new().kind(DtwKind::MaxAbs))
                    .expect("concurrent query")
                    .termination
            }));
        }
        for handle in handles {
            assert!(handle.join().expect("join").is_complete());
        }
    });
    assert_eq!(
        gate.shed_count(),
        0,
        "bounded queue should absorb the burst"
    );
    assert_eq!(gate.active(), 0);
    assert_eq!(gate.queued(), 0);
}

#[test]
fn sharded_deadline_mid_fan_out_returns_typed_exact_subset() {
    // A shared deadline expiring after shard k of n must surface as a
    // *typed* partial answer: the merged outcome is `DeadlineExceeded`, its
    // matches are an exact subset of the full fan-out answer, and no shard
    // is ever short-read — a shard either reports `Complete` with its full
    // per-shard answer, or reports the deadline itself with an exact subset.
    use tw_core::search::ShardedSearch;

    let data = generate_random_walks(&RandomWalkConfig::paper(60, 35), 291);
    let sharded = ShardedSearch::build_in_memory(&data, 12, None).expect("build sharded");
    assert_eq!(sharded.shard_count(), 5);
    let query = generate_queries(&data, 1, 292).remove(0);

    let full = sharded
        .range_search_sharded(
            &query,
            0.5,
            &EngineOpts::new().kind(DtwKind::MaxAbs).threads(1),
        )
        .expect("full fan-out");
    assert!(full.merged.termination.is_complete());

    let run = |deadline_ms: u64| {
        // Fresh simulated clock per run: every read advances 1 ms, so the
        // trip lands on exactly the same cancellation check each time.
        let clock = Arc::new(ManualClock::with_tick(Duration::from_millis(1)));
        let budget = QueryBudget::new()
            .deadline(Duration::from_millis(deadline_ms))
            .clock(clock);
        sharded
            .range_search_sharded(
                &query,
                0.5,
                &EngineOpts::new()
                    .kind(DtwKind::MaxAbs)
                    .threads(1)
                    .budget(budget),
            )
            .expect("deadlined fan-out")
    };

    // Walk a deadline ladder until the trip lands strictly mid-fan-out:
    // at least one leading shard complete, at least one trailing shard cut.
    let mut saw_mid_trip = false;
    for deadline_ms in [2u64, 5, 10, 20, 40, 80, 160, 320, 640] {
        let out = run(deadline_ms);
        match out.merged.termination {
            Termination::Complete => {
                assert_eq!(out.merged.ids(), full.merged.ids(), "{deadline_ms} ms");
                continue;
            }
            Termination::DeadlineExceeded => {}
            ref other => panic!("{deadline_ms} ms: unexpected {other:?}"),
        }
        assert!(
            is_exact_subset(&out.merged.matches, &full.merged.matches),
            "{deadline_ms} ms: merged answer is not an exact subset"
        );
        assert!(
            out.merged.query_stats.accounting_balanced(),
            "{deadline_ms} ms: {:?}",
            out.merged.query_stats
        );
        let complete_prefix = out
            .per_shard
            .iter()
            .take_while(|s| s.termination.is_complete())
            .count();
        for (si, shard) in out.per_shard.iter().enumerate() {
            if shard.termination.is_complete() {
                // Completeness means *that shard's whole answer*, id for id.
                assert_eq!(
                    shard.ids(),
                    full.per_shard[si].ids(),
                    "{deadline_ms} ms: shard {si} short-read its matches"
                );
            } else {
                assert_eq!(
                    shard.termination,
                    Termination::DeadlineExceeded,
                    "{deadline_ms} ms: shard {si}"
                );
                assert!(
                    is_exact_subset(&shard.matches, &full.per_shard[si].matches),
                    "{deadline_ms} ms: shard {si} partial answer is not exact"
                );
            }
        }
        if complete_prefix > 0 && complete_prefix < out.per_shard.len() {
            saw_mid_trip = true;
            // The simulated trip point is deterministic: same deadline,
            // same answer.
            let again = run(deadline_ms);
            assert_eq!(again.merged.termination, Termination::DeadlineExceeded);
            assert_eq!(again.merged.ids(), out.merged.ids(), "{deadline_ms} ms");
            assert!(again
                .merged
                .query_stats
                .counters_eq(&out.merged.query_stats));
        }
    }
    assert!(
        saw_mid_trip,
        "no deadline on the ladder tripped after shard k of n — retune the ladder"
    );
}

#[test]
fn knn_budget_returns_exact_partial_neighbours() {
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 35), 271);
    let store = store_with(&data);
    let engine = TwSimSearch::build(&store).expect("build");
    let query = generate_queries(&data, 1, 272).remove(0);

    let out = engine
        .knn_governed(
            &store,
            &query,
            10,
            &EngineOpts::new()
                .kind(DtwKind::MaxAbs)
                .budget(QueryBudget::new().max_cells(500)),
        )
        .expect("budgeted knn");
    assert!(
        matches!(
            out.termination,
            Termination::BudgetExhausted {
                which: BudgetKind::DtwCells
            }
        ),
        "{:?}",
        out.termination
    );
    // Whatever came back is exact: recompute each distance from scratch.
    for m in &out.matches {
        let values = store.get(m.id).expect("get");
        let exact = dtw(&values, &query, DtwKind::MaxAbs).distance;
        assert_eq!(m.distance, exact, "id {}", m.id);
    }
    assert!(
        out.query_stats.accounting_balanced(),
        "{:?}",
        out.query_stats
    );
    assert!(
        out.query_stats.skipped_unverified > 0,
        "{:?}",
        out.query_stats
    );
}

#[test]
fn subsequence_budget_returns_exact_window_subset() {
    let data = generate_random_walks(&RandomWalkConfig::paper(20, 30), 281);
    let store = store_with(&data);
    let spec = WindowSpec::new(6, 12, 2, 2).expect("spec");
    let index = SubsequenceIndex::build(&store, spec).expect("build windows");
    let query = generate_queries(&data, 1, 282).remove(0);
    let query = &query[..8.min(query.len())];

    let full = index
        .search_governed(&store, query, 0.8, &EngineOpts::new().kind(DtwKind::MaxAbs))
        .expect("full subsequence search");
    let out = index
        .search_governed(
            &store,
            query,
            0.8,
            &EngineOpts::new()
                .kind(DtwKind::MaxAbs)
                .budget(QueryBudget::new().max_cells(200)),
        )
        .expect("budgeted subsequence search");
    assert!(!out.termination.is_complete(), "budget should trip");
    for m in &out.matches {
        assert!(
            full.matches.iter().any(|f| f.id == m.id
                && f.offset == m.offset
                && f.len == m.len
                && f.distance == m.distance),
            "window {m:?} not in the unbudgeted answer"
        );
    }
    assert!(
        out.query_stats.accounting_balanced(),
        "{:?}",
        out.query_stats
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any corpus, tolerance, and cell budget, the budgeted answer is an
    /// exact subset of the unbudgeted one and the ledger balances — across
    /// both scan engines (the index engines share their verify path).
    #[test]
    fn budgeted_answers_are_always_exact_subsets(
        seed in 0u64..1000,
        db_size in 5usize..40,
        eps in 0.05f64..1.0,
        max_cells in 1u64..20_000,
    ) {
        let data = generate_random_walks(&RandomWalkConfig::paper(db_size, 25), seed);
        let store = store_with(&data);
        let query = generate_queries(&data, 1, seed ^ 0x5eed).remove(0);
        let engines: [&dyn SearchEngine<MemPager>; 2] = [&NaiveScan, &LbScan];

        for engine in engines {
            let full = engine
                .range_search(
                    &store,
                    &query,
                    eps,
                    &EngineOpts::new().kind(DtwKind::MaxAbs).threads(1),
                )
                .expect("full run");
            let out = engine
                .range_search(
                    &store,
                    &query,
                    eps,
                    &EngineOpts::new()
                        .kind(DtwKind::MaxAbs)
                        .threads(1)
                        .budget(QueryBudget::new().max_cells(max_cells)),
                )
                .expect("budgeted run");
            prop_assert!(
                is_exact_subset(&out.matches, &full.matches),
                "{}: budgeted answer is not a subset",
                engine.name()
            );
            prop_assert!(
                out.query_stats.accounting_balanced(),
                "{}: {:?}",
                engine.name(),
                out.query_stats
            );
            if out.termination.is_complete() {
                prop_assert_eq!(out.ids(), full.ids());
            }
        }
    }
}
