//! The transport fault matrix: a live server under seeded [`FaultStream`]
//! injection.
//!
//! Each scenario drives one documented failure mode end to end over a real
//! TCP loopback and checks both sides of the contract — the client gets a
//! *typed* outcome (never a mis-parse, never a hang), and the server's
//! frame ledger bills the connection to exactly one counter while it keeps
//! serving everyone else:
//!
//! | fault                | client sees                  | server ledger       |
//! |----------------------|------------------------------|---------------------|
//! | torn request frame   | `NetError::Io` (broken pipe) | `bad_frames`        |
//! | transient/short read | a normal reply (healed)      | `responses_sent`    |
//! | bit flip on a reply  | `FrameError::BadCrc`         | `responses_sent`    |
//! | client stops reading | —                            | `slow_client_drops` |

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tw_core::{Clock, QueryBudget, QueryStats, SystemClock, Termination, TwError};
use tw_net::{
    encode_frame, read_frame, write_frame, Client, ClientConfig, FaultStream, FrameError, NetError,
    NetFaultConfig, NetFaultKind, QueryKind, QueryRequest, QueryService, Reply, Server,
    ServerConfig, ServiceOutcome, WireBudget, WireHealth, WireMatch, DEFAULT_MAX_PAYLOAD,
    HEADER_BYTES,
};

/// Returns a fixed number of matches per query; `count` scales the reply
/// size so tests can provoke (or avoid) socket-buffer backpressure.
struct MatchService {
    count: u64,
}

impl QueryService for MatchService {
    fn execute(
        &self,
        _request: &QueryRequest,
        _budget: QueryBudget,
    ) -> Result<ServiceOutcome, TwError> {
        Ok(ServiceOutcome {
            matches: (0..self.count)
                .map(|id| WireMatch { id, distance: 1.5 })
                .collect(),
            stats: QueryStats::default(),
            health: WireHealth::Healthy,
            termination: Termination::Complete,
        })
    }
}

fn clock() -> Arc<dyn Clock> {
    Arc::new(SystemClock::new())
}

fn request() -> QueryRequest {
    QueryRequest {
        tenant: 0,
        budget: WireBudget::default(),
        kind: QueryKind::Range { epsilon: 1.0 },
        values: vec![1.0, 2.0, 3.0],
    }
}

fn small_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(MatchService { count: 3 }),
        ServerConfig::default(),
    )
    .expect("bind")
}

/// Polls a server counter until it reaches `want` or the deadline passes.
fn wait_for(server: &Server, want: u64, read: impl Fn(&tw_net::ServerStats) -> u64) -> bool {
    for _ in 0..1000 {
        if read(&server.stats()) >= want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn torn_frame_is_refused_and_server_keeps_serving() {
    let server = small_server();
    let addr = server.local_addr().to_string();

    // The faulty client: its one request tears 12 bytes in — a complete,
    // valid header plus two payload bytes — then the stream breaks.
    let tcp = TcpStream::connect(&addr).expect("connect");
    let (stream, fault) = FaultStream::new(tcp, clock(), NetFaultConfig::quiet(7));
    fault.force_write(NetFaultKind::TornWrite { len: 12 });
    let mut torn = Client::from_stream(stream, clock(), ClientConfig::default());
    let err = torn.call(&request()).expect_err("torn write must fail");
    assert!(matches!(err, NetError::Io(_)), "{err}");
    assert_eq!(fault.stats().torn_writes, 1);
    // Dropping the client closes the socket; the server now sees EOF in
    // the middle of the declared payload.
    drop(torn);
    assert!(
        wait_for(&server, 1, |s| s.bad_frames),
        "server never refused the torn frame"
    );

    // A healthy client on a fresh connection is unaffected.
    let mut ok = Client::connect(&addr, clock(), ClientConfig::default()).expect("connect");
    match ok.call(&request()).expect("healthy call") {
        Reply::Outcome(response) => assert_eq!(response.matches.len(), 3),
        other => panic!("expected an outcome, got {other:?}"),
    }
    drop(ok);

    let report = server.drain();
    assert_eq!(report.server.bad_frames, 1);
    assert_eq!(report.server.responses_sent, 1);
    // The torn frame never entered `frames_read`, so the ledger balances
    // without it.
    assert!(report.server.ledger_balanced(), "{:?}", report.server);
}

#[test]
fn transient_and_short_read_chatter_heals_transparently() {
    let server = small_server();
    let addr = server.local_addr().to_string();

    let tcp = TcpStream::connect(&addr).expect("connect");
    let (stream, fault) = FaultStream::new(tcp, clock(), NetFaultConfig::quiet(11));
    // One transient on the request write, then a transient and a ragged
    // short read on the reply: the frame loops must absorb all three.
    fault.force_write(NetFaultKind::Transient);
    fault.force_read(NetFaultKind::Transient);
    fault.force_read(NetFaultKind::ShortRead { len: 3 });
    let mut client = Client::from_stream(stream, clock(), ClientConfig::default());
    match client.call(&request()).expect("chatter must heal") {
        Reply::Outcome(response) => assert_eq!(response.matches.len(), 3),
        other => panic!("expected an outcome, got {other:?}"),
    }
    let stats = fault.stats();
    assert_eq!(stats.transient_faults, 2);
    assert_eq!(stats.short_reads, 1);
    drop(client);

    let report = server.drain();
    assert_eq!(report.server.responses_sent, 1);
    assert_eq!(report.server.bad_frames, 0);
    assert!(report.server.ledger_balanced());
}

#[test]
fn seeded_fault_schedule_is_deterministic_against_a_live_server() {
    // The same seed must inject the same schedule on every run — the
    // property that makes every scenario in this file reproducible.
    let run = |seed: u64| {
        let server = small_server();
        let addr = server.local_addr().to_string();
        let tcp = TcpStream::connect(&addr).expect("connect");
        let (stream, fault) = FaultStream::new(tcp, clock(), NetFaultConfig::flaky(seed, 150));
        fault.arm();
        let mut client = Client::from_stream(stream, clock(), ClientConfig::default());
        let mut answered = 0u64;
        for _ in 0..10 {
            match client.call(&request()) {
                Ok(Reply::Outcome(_)) => answered += 1,
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(e) => panic!("flaky chatter must heal, got {e}"),
            }
        }
        drop(client);
        let report = server.drain();
        assert_eq!(report.server.responses_sent, answered);
        assert!(report.server.ledger_balanced());
        (answered, fault.stats())
    };
    let (answered_a, stats_a) = run(42);
    let (answered_b, stats_b) = run(42);
    assert_eq!(answered_a, 10, "healable chatter must not lose queries");
    assert_eq!(answered_b, 10);
    assert_eq!(stats_a, stats_b, "same seed, same injected schedule");
    assert!(stats_a.injected() > 0, "150‰ over 10 calls must inject");
}

#[test]
fn bit_flip_on_a_reply_is_a_typed_crc_error() {
    let server = small_server();
    let addr = server.local_addr().to_string();
    let clk = clock();

    // Send the request on the raw socket and give the reply time to be
    // fully buffered locally, so the faulty reads below are deterministic:
    // the first (short) read delivers exactly the header, the second —
    // with the flipped bit — the payload and CRC trailer.
    let mut tcp = TcpStream::connect(&addr).expect("connect");
    let (kind, payload) = request().encode();
    let bytes = encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).expect("encode");
    tcp.write_all(&bytes).expect("send request");
    tcp.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300));

    let (mut stream, fault) = FaultStream::new(tcp, Arc::clone(&clk), NetFaultConfig::quiet(13));
    fault.force_read(NetFaultKind::ShortRead { len: HEADER_BYTES });
    fault.force_read(NetFaultKind::BitFlip { byte: 1, bit: 4 });
    let err = read_frame(
        &mut stream,
        clk.as_ref(),
        Duration::from_secs(5),
        Duration::from_millis(5),
        DEFAULT_MAX_PAYLOAD,
        None,
    )
    .expect_err("flipped bit must fail the CRC");
    assert!(
        matches!(err, NetError::Frame(FrameError::BadCrc { .. })),
        "{err}"
    );

    let report = server.drain();
    // From the server's view the reply was delivered; the corruption
    // happened on the client's read path.
    assert_eq!(report.server.responses_sent, 1);
    assert!(report.server.ledger_balanced());
}

#[test]
fn slow_client_is_shed_while_others_are_served() {
    // 1M matches = 16 MB per reply: beyond even auto-tuned loopback
    // socket buffers (~10 MB send + receive), so a client that never
    // reads wedges the server's write until the (shortened) write
    // deadline sheds it. The frame bound is raised to match.
    const MATCHES: u64 = 1_000_000;
    const BIG_PAYLOAD: u32 = 64 << 20;
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(MatchService { count: MATCHES }),
        ServerConfig {
            max_payload: BIG_PAYLOAD,
            write_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let clk = clock();

    // The slow client sends a valid request and then never reads.
    let mut slow = TcpStream::connect(&addr).expect("connect");
    let (kind, payload) = request().encode();
    let bytes = encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).expect("encode");
    write_frame(
        &mut slow,
        clk.as_ref(),
        Duration::from_secs(5),
        Duration::from_millis(5),
        &bytes,
    )
    .expect("send request");

    // Meanwhile a prompt client on another connection gets its (equally
    // huge) answer in full.
    let mut prompt = Client::connect(
        &addr,
        Arc::clone(&clk),
        ClientConfig {
            max_payload: BIG_PAYLOAD,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    match prompt.call(&request()).expect("prompt client is served") {
        Reply::Outcome(response) => assert_eq!(response.matches.len(), MATCHES as usize),
        other => panic!("expected an outcome, got {other:?}"),
    }
    drop(prompt);

    assert!(
        wait_for(&server, 1, |s| s.slow_client_drops),
        "server never shed the slow client"
    );
    drop(slow);

    let report = server.drain();
    assert_eq!(report.server.slow_client_drops, 1);
    assert_eq!(report.server.responses_sent, 1);
    assert_eq!(report.server.frames_read, 2);
    assert!(report.server.ledger_balanced(), "{:?}", report.server);
}
