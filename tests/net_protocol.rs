//! TWNP v1 wire-format stability and corruption rejection.
//!
//! The frame layout is a public contract with the same stability
//! discipline as the TWS1/TWS2/TWR2 on-disk formats: the header fields
//! are pinned byte-for-byte, and a golden frame locks the exact encoding
//! of a representative request so accidental format drift fails loudly.
//!
//! The corruption property is the one the CRC trailer exists to provide:
//! flipping *any* single byte of a valid frame — magic, version, kind,
//! length, payload, or the CRC itself — must surface as a typed
//! [`FrameError`], never as a silently mis-parsed frame.

use proptest::prelude::*;
use tw_net::{
    decode_frame, encode_frame, FrameError, FrameKind, QueryKind, QueryRequest, WireBudget,
    DEFAULT_MAX_PAYLOAD, HEADER_BYTES, MAGIC, TRAILER_BYTES, VERSION,
};

/// A fixed representative request used by the golden pins.
fn golden_request() -> QueryRequest {
    QueryRequest {
        tenant: 7,
        budget: WireBudget {
            deadline_ms: 1_500,
            max_cells: 10_000,
            max_candidate_bytes: 0,
            max_pager_reads: 64,
        },
        kind: QueryKind::Range { epsilon: 0.25 },
        values: vec![1.0, -2.5, 0.0],
    }
}

fn golden_frame() -> Vec<u8> {
    let (kind, payload) = golden_request().encode();
    encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).expect("golden frame encodes")
}

#[test]
fn header_layout_is_pinned() {
    // frame := "TWNP" version:u8 kind:u8 len:u32le payload crc:u32le
    assert_eq!(MAGIC, *b"TWNP");
    assert_eq!(VERSION, 1);
    assert_eq!(HEADER_BYTES, 10);
    assert_eq!(TRAILER_BYTES, 4);

    let bytes = golden_frame();
    assert_eq!(&bytes[..4], b"TWNP");
    assert_eq!(bytes[4], VERSION);
    assert_eq!(bytes[5], 1, "range request frame kind");
    let len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    assert_eq!(bytes.len(), HEADER_BYTES + len + TRAILER_BYTES);
}

#[test]
fn golden_request_payload_is_pinned() {
    // payload := tenant:u32le budget:4×u64le epsilon:f64le
    //            count:u32le values:[f64le]
    let (kind, payload) = golden_request().encode();
    assert_eq!(kind, FrameKind::RangeRequest);
    assert_eq!(payload.len(), 4 + 32 + 8 + 4 + 3 * 8);
    assert_eq!(&payload[..4], &7u32.to_le_bytes());
    assert_eq!(&payload[4..12], &1_500u64.to_le_bytes());
    assert_eq!(&payload[12..20], &10_000u64.to_le_bytes());
    assert_eq!(&payload[20..28], &0u64.to_le_bytes());
    assert_eq!(&payload[28..36], &64u64.to_le_bytes());
    assert_eq!(&payload[36..44], &0.25f64.to_le_bytes());
    assert_eq!(&payload[44..48], &3u32.to_le_bytes());
    assert_eq!(&payload[48..56], &1.0f64.to_le_bytes());
    assert_eq!(&payload[56..64], &(-2.5f64).to_le_bytes());
    assert_eq!(&payload[64..72], &0.0f64.to_le_bytes());
}

#[test]
fn golden_frame_bytes_are_pinned() {
    // The complete golden frame, CRC trailer included. Regenerate only on
    // a deliberate, versioned protocol change.
    let expected = "54574e5001014800000007000000dc0500000000000010270000000000000000\
                    0000000000004000000000000000000000000000d03f0300000000000000000\
                    0f03f00000000000004c00000000000000000c4fa8083";
    let actual: String = golden_frame().iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(actual, expected);
}

#[test]
fn golden_frame_round_trips() {
    let bytes = golden_frame();
    let (frame, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("decodes");
    assert_eq!(consumed, bytes.len());
    let request = QueryRequest::decode(frame.kind, &frame.payload).expect("payload decodes");
    assert_eq!(request, golden_request());
}

/// Strategy: an arbitrary well-formed request (finite values only — the
/// wire carries any bit pattern, but equality checks want NaN-free data).
fn arb_request() -> impl Strategy<Value = QueryRequest> {
    let kind = prop_oneof![
        (0.0f64..1e6).prop_map(|epsilon| QueryKind::Range { epsilon }),
        (1u32..1000).prop_map(|k| QueryKind::Knn { k }),
    ];
    let budget = (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(deadline_ms, max_cells, max_candidate_bytes, max_pager_reads)| WireBudget {
            deadline_ms,
            max_cells,
            max_candidate_bytes,
            max_pager_reads,
        },
    );
    (
        any::<u32>(),
        budget,
        kind,
        prop::collection::vec(-1e9f64..1e9, 0..16),
    )
        .prop_map(|(tenant, budget, kind, values)| QueryRequest {
            tenant,
            budget,
            kind,
            values,
        })
}

proptest! {
    /// Any well-formed request survives an encode/decode round trip.
    #[test]
    fn any_request_round_trips(request in arb_request()) {
        let (kind, payload) = request.encode();
        let bytes = encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).unwrap();
        let (frame, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        let decoded = QueryRequest::decode(frame.kind, &frame.payload).unwrap();
        prop_assert_eq!(decoded, request);
    }

    /// Flipping any single byte of a valid frame — with any nonzero XOR
    /// mask — yields a typed decode error, never a mis-parse. Header
    /// corruption trips the field checks; payload and trailer corruption
    /// trip the CRC.
    #[test]
    fn any_single_byte_corruption_is_refused(
        request in arb_request(),
        index in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let (kind, payload) = request.encode();
        let mut bytes = encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).unwrap();
        let at = index % bytes.len();
        bytes[at] ^= mask;
        let result = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD);
        prop_assert!(
            result.is_err(),
            "corrupting byte {} with mask {:#04x} decoded anyway",
            at,
            mask
        );
    }

    /// Corruption of the magic or version bytes maps to the documented
    /// typed failures, not to a CRC catch-all: the decoder refuses the
    /// frame before sizing any payload read. (A corrupt kind byte can
    /// land on another *valid* kind code, where the CRC is the defense —
    /// that path is covered by the general corruption property above.)
    #[test]
    fn magic_and_version_corruption_is_typed(
        request in arb_request(),
        at in 0usize..5,
        mask in 1u8..=255,
    ) {
        let (kind, payload) = request.encode();
        let mut bytes = encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).unwrap();
        bytes[at] ^= mask;
        match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::BadMagic(_) | FrameError::UnsupportedVersion(_)) => {}
            other => prop_assert!(false, "expected a typed header error, got {other:?}"),
        }
    }

    /// A truncated frame is refused with a typed truncation at every
    /// possible cut point.
    #[test]
    fn any_truncation_is_refused(request in arb_request(), cut in any::<usize>()) {
        let (kind, payload) = request.encode();
        let bytes = encode_frame(kind, &payload, DEFAULT_MAX_PAYLOAD).unwrap();
        let keep = cut % bytes.len(); // strictly shorter than the frame
        let result = decode_frame(&bytes[..keep], DEFAULT_MAX_PAYLOAD);
        prop_assert!(matches!(result, Err(FrameError::Truncated { .. })), "{result:?}");
    }
}
