//! Property tests of the paper's central guarantees:
//!
//! * Theorem 1: `D_tw(S, Q) >= D_tw-lb(S, Q)` for all sequences;
//! * Theorem 2: `D_tw-lb` satisfies the triangular inequality (it is a
//!   pseudo-metric);
//! * Corollary 1: filtering with `D_tw-lb` admits every true match (no false
//!   dismissal), end to end through the R-tree index.

use proptest::prelude::*;

use tw_core::distance::{dtw, dtw_banded, dtw_within, DtwKind};
use tw_core::search::{EngineOpts, LbScan, NaiveScan, SearchEngine, TwSimSearch};
use tw_core::{lb_improved, Candidate, KeoghBound, KimBound, LowerBound, PreparedQuery, YiBound};
use tw_storage::SequenceStore;

const KINDS: [DtwKind; 3] = [DtwKind::SumAbs, DtwKind::SumSquared, DtwKind::MaxAbs];

fn cand(s: &[f64]) -> Candidate<'_> {
    Candidate {
        id: 0,
        values: s,
        precomputed: None,
    }
}

/// The Kim tier as a plain function (the tier ignores the query kind).
fn lb_kim(s: &[f64], q: &[f64]) -> f64 {
    KimBound
        .evaluate(&PreparedQuery::new(q, DtwKind::MaxAbs, None), &cand(s))
        .expect("non-empty query")
}

/// The Yi tier as a plain function.
fn lb_yi(s: &[f64], q: &[f64], kind: DtwKind) -> f64 {
    YiBound
        .evaluate(&PreparedQuery::new(q, kind, None), &cand(s))
        .expect("the Yi tier always applies")
}

/// The Keogh tier as a plain function (equal lengths, band half-width `w`).
fn lb_keogh(s: &[f64], q: &[f64], kind: DtwKind, w: usize) -> f64 {
    KeoghBound
        .evaluate(&PreparedQuery::new(q, kind, Some(w)), &cand(s))
        .expect("equal lengths")
}

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 1..=max_len)
}

fn db_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(seq_strategy(12), 1..25)
}

/// A random walk in the paper's generator family: start plus bounded steps.
fn walk_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    (1.0f64..10.0, prop::collection::vec(-0.1f64..0.1, 1..=len)).prop_map(|(start, steps)| {
        let mut walk = Vec::with_capacity(steps.len() + 1);
        let mut value = start;
        walk.push(value);
        for step in steps {
            value += step;
            walk.push(value);
        }
        walk
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 1, for every recurrence kind.
    #[test]
    fn lb_kim_never_exceeds_dtw(s in seq_strategy(20), q in seq_strategy(20)) {
        let lb = lb_kim(&s, &q);
        for kind in KINDS {
            let d = dtw(&s, &q, kind).distance;
            prop_assert!(lb <= d + 1e-9, "{kind:?}: lb {lb} > dtw {d}");
        }
    }

    /// LB_Yi is also a valid lower bound for its matching kind.
    #[test]
    fn lb_yi_never_exceeds_dtw(s in seq_strategy(20), q in seq_strategy(20)) {
        for kind in KINDS {
            let lb = lb_yi(&s, &q, kind);
            let d = dtw(&s, &q, kind).distance;
            prop_assert!(lb <= d + 1e-9, "{kind:?}: lb {lb} > dtw {d}");
        }
    }

    /// Theorem 2: the triangular inequality of `D_tw-lb`.
    #[test]
    fn lb_kim_triangle(
        x in seq_strategy(15),
        y in seq_strategy(15),
        z in seq_strategy(15),
    ) {
        prop_assert!(lb_kim(&x, &z) <= lb_kim(&x, &y) + lb_kim(&y, &z) + 1e-9);
    }

    /// Symmetry and identity of `D_tw-lb` (the other metric axioms).
    #[test]
    fn lb_kim_metric_axioms(s in seq_strategy(15), q in seq_strategy(15)) {
        prop_assert_eq!(lb_kim(&s, &q), lb_kim(&q, &s));
        prop_assert_eq!(lb_kim(&s, &s), 0.0);
        prop_assert!(lb_kim(&s, &q) >= 0.0);
    }

    /// The early-abandoning decision procedure agrees with the full DP.
    #[test]
    fn dtw_within_is_consistent(
        s in seq_strategy(15),
        q in seq_strategy(15),
        eps in 0.0f64..60.0,
    ) {
        for kind in KINDS {
            let exact = dtw(&s, &q, kind).distance;
            let outcome = dtw_within(&s, &q, kind, eps);
            if exact <= eps {
                let within = outcome.within;
                prop_assert!(within.is_some(), "{kind:?}: {exact} <= {eps} but rejected");
                prop_assert!((within.unwrap() - exact).abs() < 1e-9);
            } else {
                prop_assert!(outcome.within.is_none(),
                    "{kind:?}: {exact} > {eps} but accepted");
            }
        }
    }

    /// Corollary 1 end to end: the index-based engine returns exactly the
    /// scan's result set on arbitrary databases, queries and tolerances.
    #[test]
    fn tw_sim_search_no_false_dismissal(
        data in db_strategy(),
        q in seq_strategy(12),
        eps in 0.0f64..20.0,
    ) {
        let mut store = SequenceStore::in_memory();
        for s in &data {
            store.append(s).expect("append");
        }
        let engine = TwSimSearch::build(&store).expect("build");
        for kind in KINDS {
            let opts = EngineOpts::new().kind(kind);
            let naive = NaiveScan.range_search(&store, &q, eps, &opts).expect("scan");
            let idx = engine.range_search(&store, &q, eps, &opts).expect("index search");
            prop_assert_eq!(naive.ids(), idx.ids(), "{:?} eps {}", kind, eps);
        }
    }

    /// The pruning cascade on the paper's own data family: every bound the
    /// engines prune with stays below the true distance on random walks.
    /// (Note `lb_kim <= lb_yi` does NOT hold in general — s = [0, 10],
    /// q = [10, 0] gives lb_kim = 10, lb_yi = 0 — so each bound is checked
    /// against `D_tw` directly, which is all soundness requires.)
    #[test]
    fn bound_cascade_on_random_walks(s in walk_strategy(24), q in walk_strategy(24)) {
        let kim = lb_kim(&s, &q);
        for kind in KINDS {
            let d = dtw(&s, &q, kind).distance;
            let yi = lb_yi(&s, &q, kind);
            prop_assert!(kim <= d + 1e-9, "{kind:?}: lb_kim {kim} > dtw {d}");
            prop_assert!(yi <= d + 1e-9, "{kind:?}: lb_yi {yi} > dtw {d}");
        }
    }

    /// LB_Keogh lower-bounds the banded DTW it is derived from (equal
    /// lengths, shared band width).
    #[test]
    fn lb_keogh_never_exceeds_banded_dtw(
        // One vec of pairs, unzipped — guarantees equal lengths without
        // needing a dependent strategy.
        pairs in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..=16),
        w in 0usize..6,
    ) {
        let (s, q): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        for kind in KINDS {
            let lb = lb_keogh(&s, &q, kind, w);
            let d = dtw_banded(&s, &q, kind, w).distance;
            prop_assert!(lb <= d + 1e-9, "{kind:?} w {w}: lb_keogh {lb} > banded {d}");
        }
    }

    /// The tier ordering of the cascade on the paper's data family:
    /// `lb_keogh <= lb_improved <= banded DTW` — LB_Improved refines Keogh's
    /// bound (its first pass *is* LB_Keogh) while staying a lower bound of
    /// the banded distance it gates.
    #[test]
    fn keogh_improved_banded_dtw_are_ordered(
        starts in (1.0f64..10.0, 1.0f64..10.0),
        step_pairs in prop::collection::vec((-0.1f64..0.1, -0.1f64..0.1), 1..=24),
        w in 0usize..6,
    ) {
        // Two random walks of equal length, built from paired steps.
        let (mut s, mut q) = (vec![starts.0], vec![starts.1]);
        for (ds, dq) in &step_pairs {
            s.push(s.last().copied().unwrap_or_default() + ds);
            q.push(q.last().copied().unwrap_or_default() + dq);
        }
        for kind in KINDS {
            let keogh = lb_keogh(&s, &q, kind, w);
            let improved = lb_improved(&s, &q, kind, w);
            let d = dtw_banded(&s, &q, kind, w).distance;
            prop_assert!(
                keogh <= improved + 1e-9,
                "{kind:?} w {w}: lb_keogh {keogh} > lb_improved {improved}"
            );
            prop_assert!(
                improved <= d + 1e-9,
                "{kind:?} w {w}: lb_improved {improved} > banded {d}"
            );
        }
    }

    /// A sequence a lower bound prunes is never a true ε-match: pruning
    /// decisions and the exact distance can never disagree.
    #[test]
    fn pruned_sequences_are_never_true_matches(
        s in walk_strategy(20),
        q in walk_strategy(20),
        eps in 0.0f64..2.0,
    ) {
        for kind in KINDS {
            let d = dtw(&s, &q, kind).distance;
            if lb_kim(&s, &q) > eps || lb_yi(&s, &q, kind) > eps {
                prop_assert!(d > eps, "{kind:?}: pruned but dtw {d} <= eps {eps}");
            }
        }
    }

    /// Counters can't hide a false dismissal: LB-Scan's pruned rows are
    /// accounted for AND its result set still equals the naive scan's, so a
    /// bound that over-prunes fails on both axes at once.
    #[test]
    fn pruning_counters_are_consistent_with_exactness(
        data in prop::collection::vec(walk_strategy(16), 1..20),
        q in walk_strategy(16),
        eps in 0.0f64..1.0,
    ) {
        let mut store = SequenceStore::in_memory();
        for s in &data {
            store.append(s).expect("append");
        }
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
        let naive = NaiveScan.range_search(&store, &q, eps, &opts).expect("scan");
        let lb = LbScan.range_search(&store, &q, eps, &opts).expect("lb-scan");
        prop_assert_eq!(naive.ids(), lb.ids(), "eps {}", eps);
        let qs = lb.query_stats;
        prop_assert!(qs.accounting_balanced(), "{:?}", qs);
        prop_assert_eq!(qs.candidates, data.len() as u64);
        prop_assert!(lb.matches.len() as u64 <= qs.verified + qs.abandoned);
    }

    /// The filter step never under-approximates: every true match is among
    /// the candidates (candidates >= matches).
    #[test]
    fn candidates_cover_matches(
        data in db_strategy(),
        q in seq_strategy(12),
        eps in 0.0f64..10.0,
    ) {
        let mut store = SequenceStore::in_memory();
        for s in &data {
            store.append(s).expect("append");
        }
        let engine = TwSimSearch::build(&store).expect("build");
        let res = engine
            .range_search(&store, &q, eps, &EngineOpts::new().kind(DtwKind::MaxAbs))
            .expect("search");
        prop_assert!(res.stats.candidates >= res.matches.len());
    }
}
