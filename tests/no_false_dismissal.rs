//! Property tests of the paper's central guarantees:
//!
//! * Theorem 1: `D_tw(S, Q) >= D_tw-lb(S, Q)` for all sequences;
//! * Theorem 2: `D_tw-lb` satisfies the triangular inequality (it is a
//!   pseudo-metric);
//! * Corollary 1: filtering with `D_tw-lb` admits every true match (no false
//!   dismissal), end to end through the R-tree index.

use proptest::prelude::*;

use tw_core::distance::{dtw, dtw_within, DtwKind};
use tw_core::search::{EngineOpts, NaiveScan, SearchEngine, TwSimSearch};
use tw_core::{lb_kim, lb_yi};
use tw_storage::SequenceStore;

const KINDS: [DtwKind; 3] = [DtwKind::SumAbs, DtwKind::SumSquared, DtwKind::MaxAbs];

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 1..=max_len)
}

fn db_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(seq_strategy(12), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 1, for every recurrence kind.
    #[test]
    fn lb_kim_never_exceeds_dtw(s in seq_strategy(20), q in seq_strategy(20)) {
        let lb = lb_kim(&s, &q);
        for kind in KINDS {
            let d = dtw(&s, &q, kind).distance;
            prop_assert!(lb <= d + 1e-9, "{kind:?}: lb {lb} > dtw {d}");
        }
    }

    /// LB_Yi is also a valid lower bound for its matching kind.
    #[test]
    fn lb_yi_never_exceeds_dtw(s in seq_strategy(20), q in seq_strategy(20)) {
        for kind in KINDS {
            let lb = lb_yi(&s, &q, kind);
            let d = dtw(&s, &q, kind).distance;
            prop_assert!(lb <= d + 1e-9, "{kind:?}: lb {lb} > dtw {d}");
        }
    }

    /// Theorem 2: the triangular inequality of `D_tw-lb`.
    #[test]
    fn lb_kim_triangle(
        x in seq_strategy(15),
        y in seq_strategy(15),
        z in seq_strategy(15),
    ) {
        prop_assert!(lb_kim(&x, &z) <= lb_kim(&x, &y) + lb_kim(&y, &z) + 1e-9);
    }

    /// Symmetry and identity of `D_tw-lb` (the other metric axioms).
    #[test]
    fn lb_kim_metric_axioms(s in seq_strategy(15), q in seq_strategy(15)) {
        prop_assert_eq!(lb_kim(&s, &q), lb_kim(&q, &s));
        prop_assert_eq!(lb_kim(&s, &s), 0.0);
        prop_assert!(lb_kim(&s, &q) >= 0.0);
    }

    /// The early-abandoning decision procedure agrees with the full DP.
    #[test]
    fn dtw_within_is_consistent(
        s in seq_strategy(15),
        q in seq_strategy(15),
        eps in 0.0f64..60.0,
    ) {
        for kind in KINDS {
            let exact = dtw(&s, &q, kind).distance;
            let outcome = dtw_within(&s, &q, kind, eps);
            if exact <= eps {
                let within = outcome.within;
                prop_assert!(within.is_some(), "{kind:?}: {exact} <= {eps} but rejected");
                prop_assert!((within.unwrap() - exact).abs() < 1e-9);
            } else {
                prop_assert!(outcome.within.is_none(),
                    "{kind:?}: {exact} > {eps} but accepted");
            }
        }
    }

    /// Corollary 1 end to end: the index-based engine returns exactly the
    /// scan's result set on arbitrary databases, queries and tolerances.
    #[test]
    fn tw_sim_search_no_false_dismissal(
        data in db_strategy(),
        q in seq_strategy(12),
        eps in 0.0f64..20.0,
    ) {
        let mut store = SequenceStore::in_memory();
        for s in &data {
            store.append(s).expect("append");
        }
        let engine = TwSimSearch::build(&store).expect("build");
        for kind in KINDS {
            let opts = EngineOpts::new().kind(kind);
            let naive = NaiveScan.range_search(&store, &q, eps, &opts).expect("scan");
            let idx = engine.range_search(&store, &q, eps, &opts).expect("index search");
            prop_assert_eq!(naive.ids(), idx.ids(), "{:?} eps {}", kind, eps);
        }
    }

    /// The filter step never under-approximates: every true match is among
    /// the candidates (candidates >= matches).
    #[test]
    fn candidates_cover_matches(
        data in db_strategy(),
        q in seq_strategy(12),
        eps in 0.0f64..10.0,
    ) {
        let mut store = SequenceStore::in_memory();
        for s in &data {
            store.append(s).expect("append");
        }
        let engine = TwSimSearch::build(&store).expect("build");
        let res = engine
            .range_search(&store, &q, eps, &EngineOpts::new().kind(DtwKind::MaxAbs))
            .expect("search");
        prop_assert!(res.stats.candidates >= res.matches.len());
    }
}
