//! Durability tests: the sequence store and the R-tree index round-trip
//! through their on-disk formats and keep answering queries identically.

use tw_core::distance::DtwKind;
use tw_core::search::{EngineOpts, NaiveScan, SearchEngine, TwSimSearch};
use tw_core::FeatureVector;
use tw_rtree::RTree;
use tw_storage::{FilePager, SequenceStore};
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-persist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn store_survives_reopen_and_queries_agree() {
    let dir = temp_dir("store");
    let path = dir.join("db.pages");
    let data = generate_random_walks(&RandomWalkConfig::paper(80, 60), 1);
    let queries = generate_queries(&data, 3, 2);

    let reference: Vec<Vec<u64>> = {
        let pager = FilePager::create(&path, 1024).expect("create");
        let mut store = SequenceStore::create(pager, 32).expect("store");
        for s in &data {
            store.append(s).expect("append");
        }
        store.flush().expect("flush");
        queries
            .iter()
            .map(|q| {
                NaiveScan
                    .range_search(&store, q, 0.1, &EngineOpts::new().kind(DtwKind::MaxAbs))
                    .expect("scan")
                    .ids()
            })
            .collect()
    };

    // Reopen from disk: same contents, same answers.
    let pager = FilePager::open(&path, 1024).expect("open");
    let store = SequenceStore::open(pager, 32).expect("reopen");
    assert_eq!(store.len(), data.len());
    for (i, s) in data.iter().enumerate() {
        assert_eq!(&store.get(i as u64).expect("get"), s);
    }
    for (q, expect) in queries.iter().zip(&reference) {
        let ids = NaiveScan
            .range_search(&store, q, 0.1, &EngineOpts::new().kind(DtwKind::MaxAbs))
            .expect("scan")
            .ids();
        assert_eq!(&ids, expect);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rtree_index_round_trips_through_pages() {
    let data = generate_random_walks(&RandomWalkConfig::paper(500, 40), 3);
    let mut store = SequenceStore::in_memory();
    for s in &data {
        store.append(s).expect("append");
    }
    let engine = TwSimSearch::build(&store).expect("build");

    // Serialize the tree to 1 KB pages and rebuild it.
    let bytes = engine.tree().to_bytes(1024);
    let restored: RTree<4> = RTree::from_bytes(bytes).expect("decode");
    restored.assert_valid();
    assert_eq!(restored.len(), engine.tree().len());

    // The restored tree answers the same range queries.
    let queries = generate_queries(&data, 5, 4);
    for q in &queries {
        let p = FeatureVector::from_values(q).as_point();
        for eps in [0.05, 0.2, 1.0] {
            let mut a = engine.tree().range_centered(&p, eps).ids;
            let mut b = restored.range_centered(&p, eps).ids;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "eps {eps}");
        }
    }
}

#[test]
fn full_pipeline_on_disk() {
    // Store on disk, index serialized, both reloaded, query answers match a
    // fresh in-memory pipeline.
    let dir = temp_dir("pipeline");
    let store_path = dir.join("db.pages");
    let index_path = dir.join("index.rtree");
    let data = generate_random_walks(&RandomWalkConfig::paper(120, 50), 5);
    let queries = generate_queries(&data, 4, 6);

    {
        let pager = FilePager::create(&store_path, 1024).expect("create");
        let mut store = SequenceStore::create(pager, 32).expect("store");
        for s in &data {
            store.append(s).expect("append");
        }
        store.flush().expect("flush");
        let engine = TwSimSearch::build(&store).expect("build");
        std::fs::write(&index_path, engine.tree().to_bytes(1024)).expect("write index");
    }

    let pager = FilePager::open(&store_path, 1024).expect("open");
    let store = SequenceStore::open(pager, 32).expect("reopen");
    let raw = std::fs::read(&index_path).expect("read index");
    let tree: RTree<4> = RTree::from_bytes(raw.into()).expect("decode index");
    tree.assert_valid();

    for q in &queries {
        let scan_ids = NaiveScan
            .range_search(&store, q, 0.1, &EngineOpts::new().kind(DtwKind::MaxAbs))
            .expect("scan")
            .ids();
        // Reconstruct the filter+verify loop over the deserialized tree.
        let p = FeatureVector::from_values(q).as_point();
        let mut idx_ids = Vec::new();
        for id in tree.range_centered(&p, 0.1).ids {
            let values = store.get(id).expect("candidate");
            if tw_core::dtw(&values, q, DtwKind::MaxAbs).distance <= 0.1 {
                idx_ids.push(id);
            }
        }
        idx_ids.sort_unstable();
        assert_eq!(scan_ids, idx_ids);
    }
    std::fs::remove_dir_all(&dir).ok();
}
