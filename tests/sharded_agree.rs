//! Shard-equivalence: a sharded corpus must answer **byte-identically** to
//! the unsharded engine over the same data — same ids, same distances (to
//! the bit), same ordering — whatever the shard count, verification thread
//! count, or cascade arm. Sharding is a physical layout decision; it is
//! never allowed to become a semantic one.
//!
//! The property runs over seeded random-walk corpora at shard counts 1, 2,
//! 4 and 8 (including counts that don't divide the corpus evenly), verify
//! threads 1, 2 and 4, with the tiered cascade off and on, for both range
//! and kNN queries.

use proptest::prelude::*;
use tw_core::distance::DtwKind;
use tw_core::govern::Termination;
use tw_core::search::{EngineOpts, SearchEngine, ShardedSearch, TwSimSearch};
use tw_core::CascadeSpec;
use tw_storage::{MemPager, SequenceStore};
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const VERIFY_THREADS: [usize; 3] = [1, 2, 4];

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

/// Range + kNN agreement across every (shard count, threads, cascade) cell.
fn assert_sharded_agrees(data: &[Vec<f64>], queries: &[Vec<f64>], epsilons: &[f64], ks: &[usize]) {
    let store = store_with(data);
    let flat = TwSimSearch::build(&store).expect("build unsharded index");
    for shard_count in SHARD_COUNTS {
        let capacity = data.len().div_ceil(shard_count).max(1);
        let sharded =
            ShardedSearch::build_in_memory(data, capacity, None).expect("build sharded corpus");
        for threads in VERIFY_THREADS {
            for cascade in [false, true] {
                let mut opts = EngineOpts::new().kind(DtwKind::MaxAbs).threads(threads);
                if cascade {
                    opts = opts.cascade(CascadeSpec::standard());
                }
                let tag = format!(
                    "shards={shard_count} cap={capacity} threads={threads} cascade={cascade}"
                );
                for &eps in epsilons {
                    for (qi, q) in queries.iter().enumerate() {
                        let expect = flat
                            .range_search(&store, q, eps, &opts)
                            .expect("unsharded range");
                        let got = sharded
                            .range_search_sharded(q, eps, &opts)
                            .expect("sharded range");
                        assert_eq!(
                            got.merged.ids(),
                            expect.ids(),
                            "{tag} eps={eps} query={qi}: id drift"
                        );
                        for (g, e) in got.merged.matches.iter().zip(&expect.matches) {
                            assert_eq!(
                                g.distance.to_bits(),
                                e.distance.to_bits(),
                                "{tag} eps={eps} query={qi} id={}: distance drift",
                                g.id
                            );
                        }
                        assert_eq!(got.merged.termination, Termination::Complete, "{tag}");
                        assert!(
                            got.merged.query_stats.accounting_balanced(),
                            "{tag}: {:?}",
                            got.merged.query_stats
                        );
                    }
                }
                for &k in ks {
                    for (qi, q) in queries.iter().enumerate() {
                        let expect = flat
                            .knn_governed(&store, q, k, &opts)
                            .expect("unsharded knn");
                        let got = sharded.knn_sharded(q, k, &opts).expect("sharded knn");
                        assert_eq!(
                            got.merged.matches.len(),
                            expect.matches.len(),
                            "{tag} k={k} query={qi}: neighbour count drift"
                        );
                        for (g, e) in got.merged.matches.iter().zip(&expect.matches) {
                            assert_eq!(g.id, e.id, "{tag} k={k} query={qi}: id drift");
                            assert_eq!(
                                g.distance.to_bits(),
                                e.distance.to_bits(),
                                "{tag} k={k} query={qi} id={}: distance drift",
                                g.id
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_answers_are_byte_identical_to_unsharded(
        seed in 0u64..1_000,
        n in 9usize..40,
        len in 8usize..24,
    ) {
        let data = generate_random_walks(&RandomWalkConfig::paper(n, len), seed);
        let queries = generate_queries(&data, 2, seed ^ 0xABCD);
        assert_sharded_agrees(&data, &queries, &[0.2, 1.0, 5.0], &[1, 3]);
    }
}

#[test]
fn sharded_agreement_holds_on_the_paper_workload() {
    // One deterministic, slightly larger cell on top of the property — the
    // paper's random-walk family with queries drawn from the corpus.
    let data = generate_random_walks(&RandomWalkConfig::paper(64, 32), 20010402);
    let queries = generate_queries(&data, 3, 42);
    assert_sharded_agrees(&data, &queries, &[0.1, 0.3, 2.0], &[1, 5, 10]);
}

#[test]
fn uneven_tail_shard_is_still_exact() {
    // 25 sequences at capacity 8 leaves a one-sequence tail shard; the
    // global ids must still line up exactly.
    let data = generate_random_walks(&RandomWalkConfig::paper(25, 16), 7);
    let sharded = ShardedSearch::build_in_memory(&data, 8, None).expect("build");
    assert_eq!(sharded.shard_count(), 4);
    let store = store_with(&data);
    let flat = TwSimSearch::build(&store).expect("build flat");
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    let queries = generate_queries(&data, 2, 8);
    for q in &queries {
        let expect = flat.range_search(&store, q, 4.0, &opts).expect("flat");
        let got = sharded
            .range_search_sharded(q, 4.0, &opts)
            .expect("sharded");
        assert_eq!(got.merged.ids(), expect.ids());
    }
}
