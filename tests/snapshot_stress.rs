//! Threaded snapshot-consistency stress: a single writer appends (with
//! interleaved checkpoints) while reader pools of 1, 2 and 4 threads
//! continuously pin snapshots and query them. Every [`SearchOutcome`] must
//! be *exact* against a direct-DTW replay of exactly that snapshot's corpus
//! prefix — a reader that ever observes a half-applied append, a sequence
//! from the future, or a checkpoint mid-fold has failed isolation — and
//! every counter ledger must balance.
//!
//! Interleavings are seeded: the seed varies the corpus, the checkpoint
//! stride and the yield pattern of both writer and readers, so repeated runs
//! walk different schedules deterministically.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tw_core::distance::{dtw, DtwKind};
use tw_core::search::{EngineOpts, NaiveScan};
use tw_core::{ConcurrentIngest, SharedConcurrentIngest};
use tw_workload::{generate_random_walks, RandomWalkConfig};

fn corpus(seed: u64, count: usize) -> Vec<Vec<f64>> {
    generate_random_walks(&RandomWalkConfig::paper(count, 24), seed)
}

/// Ground truth: exact DTW over the first `n` corpus sequences — the corpus
/// a correctly pinned snapshot of length `n` must answer from.
fn expected_ids(corpus: &[Vec<f64>], n: usize, query: &[f64], epsilon: f64) -> Vec<u64> {
    corpus[..n]
        .iter()
        .enumerate()
        .filter(|(_, s)| dtw(s, query, DtwKind::MaxAbs).distance <= epsilon)
        .map(|(i, _)| i as u64)
        .collect()
}

/// Tiny deterministic generator for seeded yield/jitter decisions.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// One seeded interleaving: `readers` query threads against one writer.
fn run_interleaving(readers: usize, seed: u64) {
    const APPENDS: usize = 48;
    const READER_ITERS: usize = 30;

    let data = corpus(seed, APPENDS);
    let queries: Vec<(Vec<f64>, f64)> = vec![
        (data[0].clone(), 0.0),
        (data[APPENDS / 2].clone(), 0.5),
        (data[APPENDS - 1].clone(), 1.2),
        (vec![5.0, 5.5, 6.0, 5.5], 0.8),
    ];
    let stride = 5 + (seed as usize % 9);

    let ingest = ConcurrentIngest::in_memory();
    let opts = EngineOpts::new();
    let checked = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let ingest = &ingest;
        let data = &data;
        let queries = &queries;
        let opts = &opts;
        let checked = &checked;

        let writer = scope.spawn(move || {
            let mut rng = seed ^ 0xBADC0FFEE;
            let mut w = ingest.writer().expect("claim writer");
            for (i, values) in data.iter().enumerate() {
                w.append(values).expect("append");
                if i % stride == stride - 1 {
                    w.checkpoint().expect("checkpoint");
                }
                if lcg(&mut rng).is_multiple_of(3) {
                    std::thread::yield_now();
                }
            }
            w.checkpoint().expect("final checkpoint");
        });

        for r in 0..readers {
            scope.spawn(move || {
                let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(r as u64);
                for i in 0..READER_ITERS {
                    let snap = ingest.snapshot();
                    let n = snap.len();
                    let (q, eps) = &queries[(i + r) % queries.len()];

                    let got = snap.search(q, *eps, opts).expect("indexed search");
                    let want = expected_ids(data, n, q, *eps);
                    assert_eq!(
                        got.ids(),
                        want,
                        "reader {r} iter {i}: snapshot of {n} sequences at \
                         epoch {} answered wrong (seed {seed})",
                        snap.epoch()
                    );
                    assert!(
                        got.query_stats.accounting_balanced(),
                        "reader {r} iter {i}: unbalanced ledger (seed {seed})"
                    );
                    assert_eq!(got.query_stats.snapshot_epoch, snap.epoch());

                    // The naive engine over the same pinned snapshot agrees.
                    let scan = snap
                        .search_with(&NaiveScan, q, *eps, opts)
                        .expect("naive search");
                    assert_eq!(
                        scan.ids(),
                        want,
                        "reader {r} iter {i}: naive scan diverged (seed {seed})"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);

                    if lcg(&mut rng).is_multiple_of(4) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        writer.join().expect("writer thread");
    });

    assert_eq!(checked.load(Ordering::Relaxed), readers * READER_ITERS);

    // After the writer finishes, a fresh snapshot sees the whole corpus and
    // is still exact.
    let fin = ingest.snapshot();
    assert_eq!(fin.len(), data.len());
    let (q, eps) = &queries[1];
    let got = fin.search(q, *eps, &opts).expect("final search");
    assert_eq!(got.ids(), expected_ids(&data, data.len(), q, *eps));
}

#[test]
fn one_reader_stays_exact_under_concurrent_ingest() {
    for seed in [11u64, 12, 13] {
        run_interleaving(1, seed);
    }
}

#[test]
fn two_readers_stay_exact_under_concurrent_ingest() {
    for seed in [21u64, 22, 23] {
        run_interleaving(2, seed);
    }
}

#[test]
fn four_readers_stay_exact_under_concurrent_ingest() {
    for seed in [41u64, 42, 43] {
        run_interleaving(4, seed);
    }
}

/// File-backed variant: concurrent ingest against the real pager stack,
/// then a crash-free reopen must recover cleanly and answer exactly.
#[test]
fn file_backed_concurrent_ingest_reopens_exact() {
    let dir = std::env::temp_dir().join(format!("tw-snapstress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let db: PathBuf = dir.join("s.tws");
    let wal: PathBuf = dir.join("s.twl");
    let idx: PathBuf = dir.join("s.twr");

    let data = corpus(7, 32);
    let query = data[3].clone();
    let opts = EngineOpts::new();

    {
        let ingest = SharedConcurrentIngest::create_file(&db, &wal, &idx).expect("create");
        let checked = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let ingest = &ingest;
            let data = &data;
            let query = &query;
            let opts = &opts;
            let checked = &checked;
            let writer = scope.spawn(move || {
                let mut w = ingest.writer().expect("claim writer");
                for (i, values) in data.iter().enumerate() {
                    w.append(values).expect("append");
                    if i % 10 == 9 {
                        w.checkpoint().expect("checkpoint");
                    }
                }
                w.checkpoint().expect("final checkpoint");
            });
            for _ in 0..2 {
                scope.spawn(move || {
                    for _ in 0..15 {
                        let snap = ingest.snapshot();
                        let n = snap.len();
                        let got = snap.search(query, 0.9, opts).expect("search");
                        assert_eq!(got.ids(), expected_ids(data, n, query, 0.9));
                        assert!(got.query_stats.accounting_balanced());
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            writer.join().expect("writer thread");
        });
        assert_eq!(checked.load(Ordering::Relaxed), 30);
    }

    // Reopen: a checkpointed, dropped ingest must come back clean.
    let (reopened, recovery) = SharedConcurrentIngest::open_file(&db, &wal, &idx).expect("reopen");
    assert!(
        recovery.is_clean(),
        "clean shutdown reported unclean: {recovery}"
    );
    let snap = reopened.snapshot();
    assert_eq!(snap.len(), data.len());
    let got = snap.search(&query, 0.9, &opts).expect("post-reopen search");
    assert_eq!(got.ids(), expected_ids(&data, data.len(), &query, 0.9));
    assert!(got.query_stats.accounting_balanced());

    let _ = std::fs::remove_dir_all(&dir);
}
