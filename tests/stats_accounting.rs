//! The accounting invariant, enforced for all seven engines at every
//! verification thread count:
//!
//! ```text
//! candidates == pruned_lb_kim + pruned_lb_yi + pruned_lb_keogh
//!               + pruned_lb_improved + pruned_embedding
//!               + verified + abandoned + skipped_unverified
//! ```
//!
//! plus `matches <= verified + abandoned` (a match must have been DTW'd) and
//! agreement between the legacy `SearchStats` aggregates and the new
//! `QueryStats` pipeline counters. A broken counter site anywhere in an
//! engine shows up here as an unbalanced ledger.

use tw_core::distance::DtwKind;
use tw_core::search::{
    EngineOpts, FastMapSearch, HybridSearch, LbScan, NaiveScan, ResilientSearch, SearchEngine,
    StFilterSearch, TwSimSearch,
};
use tw_core::{CascadeSpec, QueryStats};
use tw_storage::{MemPager, SequenceStore};
use tw_workload::{generate_queries, generate_random_walks, RandomWalkConfig};

const VERIFY_THREADS: [usize; 3] = [1, 2, 4];

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

/// All seven engines, including the approximate and degraded-capable ones.
fn all_engines(store: &SequenceStore<MemPager>) -> Vec<Box<dyn SearchEngine<MemPager>>> {
    vec![
        Box::new(NaiveScan),
        Box::new(LbScan),
        Box::new(StFilterSearch::build(store).expect("build st-filter")),
        Box::new(TwSimSearch::build(store).expect("build tw-sim")),
        Box::new(FastMapSearch::build(store, 2, DtwKind::MaxAbs, 7).expect("fit fastmap")),
        Box::new(HybridSearch::build(store).expect("build hybrid")),
        Box::new(ResilientSearch::new(
            TwSimSearch::build(store).expect("build tw-sim for resilient"),
        )),
    ]
}

/// The invariant itself, with a context string for failure messages.
fn assert_accounting(name: &str, ctx: &str, qs: &QueryStats, matches: usize) {
    assert!(
        qs.accounting_balanced(),
        "{name} {ctx}: candidates {} != pruned {} + verified {} + abandoned {} ({qs:?})",
        qs.candidates,
        qs.pruned_total(),
        qs.verified,
        qs.abandoned
    );
    assert!(
        matches as u64 <= qs.verified + qs.abandoned,
        "{name} {ctx}: {matches} matches but only {} DTW'd candidates",
        qs.verified + qs.abandoned
    );
}

#[test]
fn every_engine_balances_at_every_thread_count() {
    let data = generate_random_walks(&RandomWalkConfig::paper(70, 40), 31);
    let store = store_with(&data);
    let engines = all_engines(&store);
    let queries = generate_queries(&data, 3, 32);

    for engine in &engines {
        for threads in VERIFY_THREADS {
            let opts = EngineOpts::new().kind(DtwKind::MaxAbs).threads(threads);
            for (qi, query) in queries.iter().enumerate() {
                for eps in [0.05, 0.3, 2.0] {
                    let out = engine
                        .range_search(&store, query, eps, &opts)
                        .unwrap_or_else(|e| panic!("{}: {e:?}", engine.name()));
                    let ctx = format!("threads {threads} query {qi} eps {eps}");
                    assert_accounting(engine.name(), &ctx, &out.query_stats, out.matches.len());
                    // The stats layer and the legacy aggregate count the
                    // same DTW work.
                    assert_eq!(
                        out.query_stats.dtw_cells,
                        out.stats.dtw_cells,
                        "{} {ctx}",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn every_engine_balances_with_the_cascade_armed() {
    // The satellite invariant: with the full tiered cascade on, the ledger
    // still closes on every engine — per-tier prunes are part of the sum,
    // not a side channel — and stays thread-count invariant.
    let data = generate_random_walks(&RandomWalkConfig::paper(70, 40), 33);
    let store = store_with(&data);
    let engines = all_engines(&store);
    let query = generate_queries(&data, 1, 34).remove(0);

    for engine in &engines {
        let mut base: Option<QueryStats> = None;
        for threads in VERIFY_THREADS {
            let opts = EngineOpts::new()
                .kind(DtwKind::MaxAbs)
                .threads(threads)
                .cascade(CascadeSpec::standard());
            for eps in [0.05, 0.3] {
                let out = engine
                    .range_search(&store, &query, eps, &opts)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", engine.name()));
                let ctx = format!("cascade threads {threads} eps {eps}");
                assert_accounting(engine.name(), &ctx, &out.query_stats, out.matches.len());
                if eps == 0.05 {
                    match &base {
                        None => base = Some(out.query_stats),
                        Some(b) => assert!(
                            out.query_stats.counters_eq(b),
                            "{} {ctx}: {:?} vs {b:?}",
                            engine.name(),
                            out.query_stats
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn counters_are_thread_count_invariant() {
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 35), 41);
    let store = store_with(&data);
    let engines = all_engines(&store);
    let query = generate_queries(&data, 1, 42).remove(0);

    for engine in &engines {
        let base = engine
            .range_search(&store, &query, 0.3, &EngineOpts::new().threads(1))
            .expect("threads=1");
        for threads in [2usize, 4] {
            let out = engine
                .range_search(&store, &query, 0.3, &EngineOpts::new().threads(threads))
                .expect("threaded");
            assert!(
                out.query_stats.counters_eq(&base.query_stats),
                "{} threads {threads}: {:?} vs {:?}",
                engine.name(),
                out.query_stats,
                base.query_stats
            );
        }
    }
}

#[test]
fn verify_work_matches_dtw_invocations() {
    // verified + abandoned is exactly the number of exact-DTW decision
    // procedures the engine ran on candidates; FastMap's pivot projections
    // are the one extra DTW source and are ledgered separately.
    let data = generate_random_walks(&RandomWalkConfig::paper(50, 30), 51);
    let store = store_with(&data);
    let engines = all_engines(&store);
    let query = generate_queries(&data, 1, 52).remove(0);
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);

    for engine in &engines {
        let out = engine
            .range_search(&store, &query, 0.3, &opts)
            .expect("search");
        let qs = out.query_stats;
        assert_eq!(
            qs.verified + qs.abandoned + qs.pivot_dtw,
            out.stats.dtw_invocations,
            "{}: {qs:?}",
            engine.name()
        );
        if engine.name() != "fastmap" {
            assert_eq!(qs.pivot_dtw, 0, "{}", engine.name());
        }
    }
}

#[test]
fn degraded_resilient_engine_still_balances() {
    let data = generate_random_walks(&RandomWalkConfig::paper(40, 30), 61);
    let store = store_with(&data);
    let engine = ResilientSearch::from_index_file("/nonexistent/stats.rtree", None);
    let query = generate_queries(&data, 1, 62).remove(0);
    for threads in VERIFY_THREADS {
        let out = engine
            .range_search(
                &store,
                &query,
                0.3,
                &EngineOpts::new().kind(DtwKind::MaxAbs).threads(threads),
            )
            .expect("degraded search");
        assert!(out.health.is_degraded());
        assert_accounting(
            "resilient-search(degraded)",
            &format!("threads {threads}"),
            &out.query_stats,
            out.matches.len(),
        );
        // The fallback is a scan: every stored row entered the pipeline.
        assert_eq!(out.query_stats.candidates, store.len() as u64);
    }
}

#[test]
fn pruned_candidates_are_never_matches() {
    // If a candidate was pruned by a lower bound it cannot appear in the
    // result set — matches fit inside the verified/abandoned budget even at
    // a tolerance where pruning is heavy.
    let data = generate_random_walks(&RandomWalkConfig::paper(80, 40), 71);
    let store = store_with(&data);
    let query = generate_queries(&data, 1, 72).remove(0);
    let opts = EngineOpts::new().kind(DtwKind::MaxAbs);
    let out = LbScan
        .range_search(&store, &query, 0.05, &opts)
        .expect("lb-scan");
    let qs = out.query_stats;
    assert!(
        qs.pruned_lb_yi > 0,
        "tolerance too loose to exercise pruning"
    );
    let naive = NaiveScan
        .range_search(&store, &query, 0.05, &opts)
        .expect("naive");
    // Exactness in the presence of pruning: the pruned rows were all true
    // rejections.
    assert_eq!(out.ids(), naive.ids());
    assert!(out.matches.len() as u64 <= qs.verified + qs.abandoned);
}

#[test]
fn knn_accounting_balances() {
    // kNN rides the same pipeline-counter ledger as the range engines:
    // every fetched neighbour is verified exactly, nothing is pruned.
    let data = generate_random_walks(&RandomWalkConfig::paper(60, 35), 81);
    let store = store_with(&data);
    let engine = TwSimSearch::build(&store).expect("build tw-sim");
    let queries = generate_queries(&data, 2, 82);

    for (qi, query) in queries.iter().enumerate() {
        for k in [1usize, 5, 20] {
            let out = engine
                .knn_governed(&store, query, k, &EngineOpts::new().kind(DtwKind::MaxAbs))
                .expect("knn");
            let ctx = format!("query {qi} k={k}");
            assert_accounting("knn", &ctx, &out.query_stats, out.matches.len());
            assert_eq!(out.matches.len(), k.min(store.len()), "{ctx}");
            // kNN never prunes: each candidate gets an exact distance.
            assert_eq!(out.query_stats.pruned_total(), 0, "{ctx}");
            assert_eq!(out.query_stats.verified, out.stats.dtw_invocations, "{ctx}");
            assert!(out.query_stats.index_node_accesses() > 0, "{ctx}");
            assert!(out.termination.is_complete(), "{ctx}");
        }
    }
}

#[test]
fn subsequence_accounting_balances() {
    use tw_core::search::{SubsequenceIndex, WindowSpec};

    let data = generate_random_walks(&RandomWalkConfig::paper(20, 30), 91);
    let store = store_with(&data);
    let spec = WindowSpec::new(6, 12, 2, 2).expect("spec");
    let index = SubsequenceIndex::build(&store, spec).expect("build windows");
    let query = generate_queries(&data, 1, 92).remove(0);
    let query = &query[..8.min(query.len())];

    for eps in [0.05, 0.3, 1.0] {
        let out = index
            .search_governed(&store, query, eps, &EngineOpts::new().kind(DtwKind::MaxAbs))
            .expect("subsequence search");
        let ctx = format!("eps {eps}");
        assert_accounting("subsequence", &ctx, &out.query_stats, out.matches.len());
        assert!(out.termination.is_complete(), "{ctx}");
        assert_eq!(
            out.query_stats.verified + out.query_stats.abandoned,
            out.stats.dtw_invocations,
            "{ctx}"
        );
    }
}

#[test]
fn sharded_fan_out_ledger_sums_exactly() {
    // Cross-shard accounting: the merged fan-out ledger balances, and every
    // per-shard counter sums *exactly* to the merged total — no work is
    // double-counted by the merge and none leaks.
    use tw_core::search::ShardedSearch;

    let data = generate_random_walks(&RandomWalkConfig::paper(60, 30), 111);
    let sharded = ShardedSearch::build_in_memory(&data, 16, None).expect("build sharded");
    assert!(sharded.shard_count() > 1);
    let queries = generate_queries(&data, 2, 112);

    for threads in VERIFY_THREADS {
        let opts = EngineOpts::new().kind(DtwKind::MaxAbs).threads(threads);
        for (qi, query) in queries.iter().enumerate() {
            for eps in [0.05, 0.3, 2.0] {
                let out = sharded
                    .range_search_sharded(query, eps, &opts)
                    .expect("fan-out");
                let ctx = format!("threads {threads} query {qi} eps {eps}");
                assert_accounting(
                    "sharded",
                    &ctx,
                    &out.merged.query_stats,
                    out.merged.matches.len(),
                );
                // Each shard's own ledger closes too.
                let mut sum = QueryStats::default();
                let mut match_sum = 0usize;
                for (si, shard) in out.per_shard.iter().enumerate() {
                    assert_accounting(
                        "sharded",
                        &format!("{ctx} shard {si}"),
                        &shard.query_stats,
                        shard.matches.len(),
                    );
                    sum.merge(&shard.query_stats);
                    match_sum += shard.matches.len();
                }
                assert!(
                    sum.counters_eq(&out.merged.query_stats),
                    "sharded {ctx}: per-shard sum {sum:?} != merged {:?}",
                    out.merged.query_stats
                );
                assert_eq!(match_sum, out.merged.matches.len(), "sharded {ctx}");
            }
        }
    }
}

#[test]
fn exhausted_budget_mid_fan_out_still_sums_exactly() {
    // When a shared budget dies mid-fan-out, later shards skip their
    // candidates as `skipped_unverified` rather than verifying them — and
    // the per-shard ledgers must still sum exactly to the merged one,
    // skipped work included.
    use tw_core::govern::QueryBudget;
    use tw_core::search::ShardedSearch;

    let data = generate_random_walks(&RandomWalkConfig::paper(50, 30), 121);
    let sharded = ShardedSearch::build_in_memory(&data, 10, None).expect("build sharded");
    assert_eq!(sharded.shard_count(), 5);
    let query = generate_queries(&data, 1, 122).remove(0);

    for threads in VERIFY_THREADS {
        let opts = EngineOpts::new()
            .kind(DtwKind::MaxAbs)
            .threads(threads)
            .budget(QueryBudget::new().max_cells(1));
        let out = sharded
            .range_search_sharded(&query, 5.0, &opts)
            .expect("budgeted fan-out");
        let ctx = format!("threads {threads}");
        assert!(
            !out.merged.termination.is_complete(),
            "{ctx}: a 1-cell budget must exhaust"
        );
        assert!(
            out.merged.query_stats.skipped_unverified > 0,
            "{ctx}: {:?}",
            out.merged.query_stats
        );
        assert_accounting(
            "sharded(budget)",
            &ctx,
            &out.merged.query_stats,
            out.merged.matches.len(),
        );
        let mut sum = QueryStats::default();
        for (si, shard) in out.per_shard.iter().enumerate() {
            assert_accounting(
                "sharded(budget)",
                &format!("{ctx} shard {si}"),
                &shard.query_stats,
                shard.matches.len(),
            );
            sum.merge(&shard.query_stats);
        }
        assert!(
            sum.counters_eq(&out.merged.query_stats),
            "{ctx}: per-shard sum {sum:?} != merged {:?}",
            out.merged.query_stats
        );
        assert_eq!(
            sum.skipped_unverified, out.merged.query_stats.skipped_unverified,
            "{ctx}"
        );
    }
}

#[test]
fn st_filter_subsequence_accounting_balances() {
    let data = generate_random_walks(&RandomWalkConfig::paper(15, 25), 101);
    let store = store_with(&data);
    let engine = StFilterSearch::build(&store).expect("build st-filter");
    let query = generate_queries(&data, 1, 102).remove(0);
    let query = &query[..6.min(query.len())];

    for eps in [0.1, 0.5] {
        let out = engine
            .subsequence_search_governed(
                &store,
                query,
                eps,
                &EngineOpts::new().kind(DtwKind::MaxAbs),
            )
            .expect("st-filter subsequence");
        let ctx = format!("eps {eps}");
        assert_accounting(
            "st-filter-subsequence",
            &ctx,
            &out.query_stats,
            out.matches.len(),
        );
        assert!(out.termination.is_complete(), "{ctx}");
    }
}
