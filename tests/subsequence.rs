//! Integration tests of the §6 subsequence-matching extension: the windowed
//! feature index finds every qualifying window the exhaustive enumeration
//! finds, across workloads, and the ST-Filter subsequence path agrees.

use proptest::prelude::*;

use tw_core::distance::{dtw, DtwKind};
use tw_core::search::{StFilterSearch, SubsequenceIndex, WindowSpec};
use tw_storage::{MemPager, SequenceStore};
use tw_suffix::{CategoryMethod, StFilter};
use tw_workload::{generate_random_walks, RandomWalkConfig};

fn store_with(data: &[Vec<f64>]) -> SequenceStore<MemPager> {
    let mut store = SequenceStore::in_memory();
    for s in data {
        store.append(s).expect("append");
    }
    store
}

/// Exhaustive window search over the same window universe the index covers.
fn brute_force_windows(
    data: &[Vec<f64>],
    spec: &WindowSpec,
    query: &[f64],
    epsilon: f64,
) -> Vec<(u64, usize, usize)> {
    let mut out = Vec::new();
    for (id, s) in data.iter().enumerate() {
        for &len in &spec.lengths() {
            if len > s.len() {
                continue;
            }
            let mut offset = 0;
            while offset + len <= s.len() {
                if dtw(&s[offset..offset + len], query, DtwKind::MaxAbs).distance <= epsilon {
                    out.push((id as u64, offset, len));
                }
                offset += spec.offset_stride;
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn window_index_matches_brute_force_on_random_walks() {
    let data = generate_random_walks(&RandomWalkConfig::paper(15, 60), 7);
    let store = store_with(&data);
    let spec = WindowSpec::new(8, 32, 2, 2).expect("spec");
    let index = SubsequenceIndex::build(&store, spec).expect("build");
    // Queries: windows cut from the data, slightly shifted.
    for (qi, base) in data.iter().take(4).enumerate() {
        let query: Vec<f64> = base[10..26].iter().map(|v| v + 0.01).collect();
        for eps in [0.02, 0.05, 0.2] {
            let (found, _) = index
                .search(&store, &query, eps, DtwKind::MaxAbs)
                .expect("search");
            let mut got: Vec<(u64, usize, usize)> =
                found.iter().map(|m| (m.id, m.offset, m.len)).collect();
            got.sort_unstable();
            let expect = brute_force_windows(&data, &spec, &query, eps);
            assert_eq!(got, expect, "query {qi} eps {eps}");
        }
    }
}

#[test]
fn st_filter_subsequence_candidates_cover_truth() {
    // The suffix-tree subsequence filter must produce a candidate window for
    // every true sub-match (its original use case from Park et al.).
    let data = generate_random_walks(&RandomWalkConfig::paper(10, 40), 9);
    let filter = StFilter::build(&data, 40, CategoryMethod::EqualWidth);
    for base in data.iter().take(3) {
        let query = base[5..17].to_vec();
        let eps = 0.05;
        let res = filter.subsequence_candidates(&query, eps);
        for (id, s) in data.iter().enumerate() {
            for start in 0..s.len() {
                for end in (start + 1)..=s.len() {
                    if dtw(&s[start..end], &query, DtwKind::MaxAbs).distance <= eps {
                        assert!(
                            res.windows.iter().any(|&(sid, off, len)| sid == id
                                && off == start
                                && len <= end - start),
                            "window ({id},{start},{end}) dismissed"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn st_filter_and_window_index_agree_on_shared_universe() {
    // Both engines answer "which windows warp onto Q within eps"; on the
    // window universe the R-tree index covers (all offsets, dense lengths),
    // every window the index finds must also be found by the suffix-tree
    // engine, and both verify with the same exact distance.
    let data = generate_random_walks(&RandomWalkConfig::paper(8, 30), 13);
    let store = store_with(&data);
    let spec = WindowSpec::new(4, 10, 1, 1).expect("spec");
    let index = SubsequenceIndex::build(&store, spec).expect("build window index");
    let st =
        StFilterSearch::build_with_categories(&store, 40, tw_suffix::CategoryMethod::EqualWidth)
            .expect("build st-filter");

    for base in data.iter().take(3) {
        let query = base[8..15].to_vec();
        for eps in [0.03, 0.08] {
            let (via_index, _) = index
                .search(&store, &query, eps, DtwKind::MaxAbs)
                .expect("window index search");
            let (via_st, _) = st
                .subsequence_search(&store, &query, eps, DtwKind::MaxAbs)
                .expect("st subsequence search");
            for m in &via_index {
                assert!(
                    via_st
                        .iter()
                        .any(|n| n.id == m.id && n.offset == m.offset && n.len == m.len),
                    "window ({}, {}, {}) found by index but not by st-filter",
                    m.id,
                    m.offset,
                    m.len
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// No false dismissal of the window index on arbitrary data.
    #[test]
    fn window_index_no_false_dismissal(
        data in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 6..30), 1..8),
        eps in 0.0f64..3.0,
    ) {
        let store = store_with(&data);
        let spec = WindowSpec::new(3, 9, 1, 1).expect("spec");
        let index = SubsequenceIndex::build(&store, spec).expect("build");
        let query: Vec<f64> = data[0].iter().take(5).copied().collect();
        let (found, _) = index
            .search(&store, &query, eps, DtwKind::MaxAbs)
            .expect("search");
        let mut got: Vec<(u64, usize, usize)> =
            found.iter().map(|m| (m.id, m.offset, m.len)).collect();
        got.sort_unstable();
        let expect = brute_force_windows(&data, &spec, &query, eps);
        prop_assert_eq!(got, expect);
    }
}
