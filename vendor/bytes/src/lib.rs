//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the API subset the storage and R-tree codecs use: [`Bytes`] (cheaply
//! cloneable immutable view), [`BytesMut`] (growable buffer), and the
//! little-endian cursor methods of [`Buf`] / [`BufMut`]. Semantics match
//! upstream for this subset; zero-copy internals are simplified to an
//! `Arc<[u8]>` window.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer (a window into shared storage).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of the current view (`range` is relative to it).
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of {}",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to {at} out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Resizes to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to {at} out of bounds");
        let tail = self.data.split_off(at);
        Self {
            data: std::mem::replace(&mut self.data, tail),
        }
    }

    /// Takes the whole contents, leaving `self` empty.
    pub fn split(&mut self) -> Self {
        Self {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Read cursor over a byte source (API subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u32`, consuming 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_into(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`, consuming 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_into(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`, consuming 8 bytes.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_into(&mut raw);
        raw[0]
    }

    /// Fills `out` from the front of the buffer, consuming it.
    #[doc(hidden)]
    fn copy_into(&mut self, out: &mut [u8]) {
        assert!(
            self.remaining() >= out.len(),
            "buffer underflow: need {} bytes, have {}",
            out.len(),
            self.remaining()
        );
        out.copy_from_slice(&self.chunk()[..out.len()]);
        self.advance(out.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink (API subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(-1.25);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 20);
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 3);
        assert_eq!(bytes.get_f64_le(), -1.25);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_split_are_windows() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let inner = mid.slice(1..2);
        assert_eq!(&inner[..], &[3]);

        let mut rest = bytes.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4, 5]);
    }

    #[test]
    fn bytes_mut_split_behaves_like_upstream() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[9, 8, 7, 6]);
        let head = buf.split_to(1);
        assert_eq!(&head[..], &[9]);
        assert_eq!(&buf[..], &[8, 7, 6]);
        let all = buf.split();
        assert!(buf.is_empty());
        assert_eq!(&all[..], &[8, 7, 6]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut bytes = Bytes::from(vec![1, 2]);
        let _ = bytes.get_u32_le();
    }
}
