//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io; this shim keeps the
//! workspace's `[[bench]]` targets compiling and runnable. It implements the
//! API subset the benches use — `benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! plain wall-clock timer instead of criterion's statistical machinery.
//! Numbers printed are means over a short calibrated run: fine for spotting
//! order-of-magnitude regressions, not for publication.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Runs one benchmark body repeatedly and records the mean time.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over a short calibrated run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: run until ~50 ms or 10k iterations.
        let budget = Duration::from_millis(50);
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget && iters < 10_000 {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = started.elapsed() / self.iters as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// calibration ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            mean: Duration::ZERO,
        };
        routine(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id), b.iters, b.mean);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (prints nothing extra; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point matching `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        {
            let mut group = BenchmarkGroup {
                criterion: self,
                name: name.to_string(),
            };
            group.bench_function("", routine);
        }
        self
    }

    fn report(&mut self, label: &str, iters: u64, mean: Duration) {
        let label = label.trim_end_matches('/');
        println!(
            "{label:<60} {:>12.0} ns/iter ({iters} iters)",
            mean.as_nanos() as f64
        );
    }
}

/// Declares a benchmark group function (simple `criterion_group!(name, fns…)`
/// form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("g", 2), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
