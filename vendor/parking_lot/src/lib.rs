//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: `lock()`
//! returns the guard directly (a poisoned std lock — a panic while holding the
//! guard — is transparently recovered, matching parking_lot's "no poisoning"
//! semantics).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
///
/// Deviates from parking_lot's `wait(&mut guard)` signature: the std
/// primitive underneath consumes and returns the guard, so this stub exposes
/// the std-style `wait(guard) -> guard` shape instead (poison recovered, like
/// the locks). Spurious wakeups are possible; callers must re-check their
/// predicate in a loop.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Releases the lock and blocks until notified, then reacquires it.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wakes one waiter, if any.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
