//! `any::<T>()` for the primitive types the workspace's tests generate.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::{Any, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Debug + Clone {
    /// Draws one full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf which
        // upstream can emit but none of the workspace's properties expect.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::fn_seed;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::deterministic(fn_seed("any"), 0);
        let bytes: Vec<u8> = (0..64).map(|_| u8::arbitrary(&mut rng)).collect();
        assert!(bytes.iter().collect::<std::collections::HashSet<_>>().len() > 16);
        let f = f64::arbitrary(&mut rng);
        assert!(f.is_finite());
    }
}
