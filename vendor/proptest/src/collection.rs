//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors of `element` values with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{fn_seed, TestRng};

    #[test]
    fn lengths_follow_size_range() {
        let mut rng = TestRng::deterministic(fn_seed("vec_len"), 0);
        let s = vec(0u8..10, 2..5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len() - 2] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen.iter().all(|&b| b), "not all lengths in 2..5 produced");
    }

    #[test]
    fn nested_vec_composes() {
        let mut rng = TestRng::deterministic(fn_seed("vec_nested"), 0);
        let s = vec(vec(0u8..3, 1..4), 2..=2);
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|inner| (1..4).contains(&inner.len())));
    }

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::deterministic(fn_seed("vec_exact"), 0);
        let s = vec(0.0f64..1.0, 7);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }
}
