//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the property-testing surface its test suites use: the [`Strategy`] trait
//! over ranges / tuples / mapped values, [`collection::vec`],
//! [`arbitrary::any`], weighted [`prop_oneof!`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **Deterministic cases, no shrinking.** Every case derives from a fixed
//!   per-test seed, so failures reproduce on every run; the failing inputs
//!   are printed verbatim instead of shrunk. `.proptest-regressions` files
//!   are not read — regressions worth keeping are promoted to explicit
//!   `#[test]`s.
//! * **Strategies are generators only** (no value trees), which is all the
//!   workspace's properties need.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Upstream's prelude exposes the crate itself under the name `prop`
    // (enabling `prop::collection::vec`).
    pub use crate as prop;
}

/// Defines deterministic property tests.
///
/// Supports the upstream form used in this workspace: an optional leading
/// `#![proptest_config(expr)]`, then any number of `#[test]` functions whose
/// arguments bind `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __test_seed = $crate::test_runner::fn_seed(::std::stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__test_seed, __case as u64);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome = {
                        $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                        ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(move || { $body })
                        )
                    };
                    if let ::std::result::Result::Err(__err) = __outcome {
                        ::std::eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:",
                            ::std::stringify!($name),
                            __case,
                            __config.cases
                        );
                        $(::std::eprintln!(
                            "  {} = {:?}",
                            ::std::stringify!($arg),
                            $arg
                        );)+
                        ::std::panic::resume_unwind(__err);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::prop_oneof![ $( 1 => $strat ),+ ]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(f64),
        Drop(usize),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(
            x in -3.0f64..7.0,
            n in 2usize..9,
            m in 1u64..=4,
        ) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
            prop_assert!((1..=4).contains(&m));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0i32..5, 3..6),
            w in prop::collection::vec(any::<u8>(), 4..=4),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn tuples_and_maps_compose(
            op in prop_oneof![
                3 => (0.0f64..1.0).prop_map(Op::Add),
                1 => (0usize..10).prop_map(Op::Drop),
            ],
            pair in (0u32..3, -1.0f64..1.0),
        ) {
            match op {
                Op::Add(x) => prop_assert!((0.0..1.0).contains(&x)),
                Op::Drop(n) => prop_assert!(n < 10),
            }
            prop_assert!(pair.0 < 3 && (-1.0..1.0).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(-1.0f64..1.0, 1..20);
        let seed = crate::test_runner::fn_seed("x");
        let a: Vec<Vec<f64>> = (0..10)
            .map(|c| strat.generate(&mut crate::test_runner::TestRng::deterministic(seed, c)))
            .collect();
        let b: Vec<Vec<f64>> = (0..10)
            .map(|c| strat.generate(&mut crate::test_runner::TestRng::deterministic(seed, c)))
            .collect();
        assert_eq!(a, b);
        // Different cases see different data.
        assert_ne!(a[0], a[1]);
    }
}
