//! The [`Strategy`] trait and the combinators the workspace's tests use.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates values of one type. Unlike upstream proptest there is no value
/// tree / shrinking — a strategy is just a deterministic generator.
pub trait Strategy {
    /// The type of value produced.
    type Value: Debug + Clone;

    /// Produces one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V: Debug + Clone> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice among type-erased strategies; built by [`crate::prop_oneof!`].
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: Debug + Clone> Union<V> {
    /// A union over `arms`; each weight must be positive.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().all(|(w, _)| *w > 0),
            "prop_oneof! weights must be positive"
        );
        Self { arms }
    }
}

impl<V: Debug + Clone> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Strategy producing a constant value (`Just` in upstream proptest).
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Debug + Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty f64 range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident: $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Marker so `any::<T>()` can live in [`crate::arbitrary`] while its strategy
/// type stays here.
#[derive(Debug, Clone)]
pub struct Any<T>(pub(crate) PhantomData<T>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::fn_seed;

    fn rng() -> TestRng {
        TestRng::deterministic(fn_seed("strategy_tests"), 0)
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut r = rng();
        let mut seen_low = false;
        for _ in 0..200 {
            let v = (10u32..13).generate(&mut r);
            assert!((10..13).contains(&v));
            seen_low |= v == 10;
            let f = (-2.0f64..=2.0).generate(&mut r);
            assert!((-2.0..=2.0).contains(&f));
            let i = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&i));
        }
        assert!(seen_low, "bounded sampling never hit the low end");
    }

    #[test]
    fn union_honours_weights_roughly() {
        let u = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let mut r = rng();
        let hits = (0..1000).filter(|_| u.generate(&mut r)).count();
        assert!(hits > 700, "expected ~900 true picks, saw {hits}");
    }

    #[test]
    fn map_composes() {
        let s = (1u8..5).prop_map(|x| x as u32 * 100);
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v % 100 == 0 && (100..500).contains(&v));
        }
    }
}
