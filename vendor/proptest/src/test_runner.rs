//! Deterministic RNG and run configuration for the proptest stand-in.

/// Run configuration; only the knobs the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite brisk while
        // still exercising the properties (tests that need more set it).
        Self { cases: 64 }
    }
}

/// Derives a stable per-test seed from the property function's name, so each
/// property explores its own deterministic stream.
pub fn fn_seed(name: &str) -> u64 {
    // FNV-1a, 64-bit.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 generator — tiny, full-period, and deterministic across
/// platforms, which is all a reproducible property test needs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for case `case` of the property seeded by `seed`.
    pub fn deterministic(seed: u64, case: u64) -> Self {
        Self {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer-valued `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is an empty range");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-data purposes and determinism is preserved.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let seed = fn_seed("some_test");
        let mut a = TestRng::deterministic(seed, 0);
        let mut b = TestRng::deterministic(seed, 0);
        let mut c = TestRng::deterministic(seed, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut rng = TestRng::deterministic(fn_seed("bounds"), 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
