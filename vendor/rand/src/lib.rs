//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand` it actually uses: [`rngs::SmallRng`], seeded via
//! [`SeedableRng::seed_from_u64`], sampled via [`Rng::gen_range`] over integer
//! and float ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which is all the workload generators need
//! (the exact stream differs from upstream `rand`, so vendored-vs-upstream
//! builds produce different but equally valid synthetic datasets).

use std::ops::{Range, RangeInclusive};

/// Seedable generators (API subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (API subset of `rand::Rng`).
pub trait Rng {
    /// The core 64-bit output all sampling derives from.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types [`Rng::gen_range`] accepts (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Treat the closed interval as half-open; for continuous values the
        // endpoint has measure zero and callers only rely on the bounds.
        lo + rng.gen_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators (API subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let w = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(3u64..=4);
            assert!(v == 3 || v == 4);
        }
        assert!(seen.iter().all(|&s| s));
    }
}
